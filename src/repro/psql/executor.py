"""The Preference SQL engine: parse, translate, optimize, run.

:class:`PreferenceSQL` owns a catalog of relations and a registry of scoring
/ combining functions for SCORE and RANK.  ``execute`` returns a relation;
``explain`` shows the chosen plan including the algebra laws that fired.

Since the unified-API redesign this class is a thin front end over
:class:`~repro.session.Session`: every statement is translated into a
:class:`~repro.query.api.PreferenceQuery` and planned/executed through the
same pipeline as the fluent API and Preference XPath — one execution path,
one plan cache.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.core.constructors import PrioritizedPreference
from repro.core.preference import Preference
from repro.psql.ast import Query
from repro.psql.parser import parse
from repro.psql.translate import (
    render_where,
    translate_preferring,
)
from repro.query.plan import Plan
from repro.relations.catalog import Catalog
from repro.relations.relation import Relation
from repro.session import Session


class PreferenceSQL:
    """A Preference SQL session bound to a catalog.

    Thin wrapper over :class:`~repro.session.Session`; kept as the
    language-centric face (``execute(text)`` / ``explain(text)``) of the
    shared query pipeline.
    """

    def __init__(
        self,
        catalog: Catalog,
        functions: Mapping[str, Callable[..., Any]] | None = None,
    ):
        self.session = Session(catalog, functions=functions)

    @property
    def catalog(self) -> Catalog:
        return self.session.catalog

    @property
    def functions(self) -> dict[str, Callable[..., Any]]:
        return self.session.functions

    def register_function(self, name: str, fn: Callable[..., Any]) -> None:
        """Register a scoring/combining function for SCORE / RANK atoms."""
        self.session.register_function(name, fn)

    # -- pipeline ------------------------------------------------------------

    def parse(self, text: str) -> Query:
        return parse(text)

    def preference_of(self, query: Query) -> Preference | None:
        """The full preference term of a query: PREFERRING & CASCADE ...

        CASCADE expresses "then, among the survivors, prefer ..." — i.e.
        prioritization of successive clauses ([KiK01]'s cascading
        preferences).
        """
        if query.preferring is None:
            return None
        parts = [translate_preferring(query.preferring, self.functions)]
        parts.extend(
            translate_preferring(c, self.functions) for c in query.cascades
        )
        if len(parts) == 1:
            return parts[0]
        return PrioritizedPreference(tuple(parts))

    def query(self, text: str):
        """The statement as a fluent :class:`PreferenceQuery` (lazy)."""
        return self.session.sql_query(text)

    def plan(self, text: str) -> Plan:
        return self.query(text).plan()

    def execute(self, text: str) -> Relation:
        """Run one statement and return the result relation."""
        return self.query(text).run()

    def explain(self, text: str) -> str:
        """The plan (operators, algorithms, fired laws) without running it."""
        return self.query(text).explain()

    def check(self, text: str) -> Any:
        """Statically analyse one statement without running it.

        Parses ``text`` (syntax errors raise :class:`ParseError` /
        :class:`LexError` with line/column information) and returns the
        analyzer's :class:`~repro.analysis.diagnostics.CheckResult` of
        ``PQxxx`` diagnostics — see :meth:`PreferenceQuery.check`.  A
        fail-fast :class:`DiagnosticError` the builder raises while
        translating the statement is folded into the result rather than
        propagated, so ``check`` always reports instead of throwing.
        """
        from repro.analysis.diagnostics import CheckResult, DiagnosticError

        try:
            return self.query(text).check()
        except DiagnosticError as exc:
            return CheckResult((exc.diagnostic,))


def _render_where(expr: Any) -> str:
    """Deprecated alias; use :func:`repro.psql.translate.render_where`."""
    return render_where(expr)
