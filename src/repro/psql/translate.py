"""Translate Preference SQL syntax into the preference model.

PREFERRING expressions become preference terms:

* ``attr = v`` / ``attr IN (...)``       -> POS
* ``attr <> v`` / ``attr NOT IN (...)``  -> NEG
* ``a ELSE b`` chains                    -> POS/POS, POS/NEG, or a general
  layered preference for longer chains (all on one attribute)
* ``AROUND`` / ``BETWEEN`` / ``LOWEST`` / ``HIGHEST`` / ``SCORE`` /
  ``EXPLICIT``                           -> the matching base constructor
* ``AND``                                -> Pareto accumulation
* ``PRIOR TO``                           -> prioritized accumulation
* ``RANK(f)(...)``                       -> numerical accumulation

Date literals: strings shaped like ``'2001/11/23'`` or ``'2001-11-23'`` are
converted to ``datetime.date`` *inside numerical atoms* (AROUND, BETWEEN),
mirroring the paper's trips example; elsewhere strings stay strings.

WHERE expressions become row predicates with SQL-ish semantics (comparisons
against NULL are false; ``IS NULL`` tests presence).
"""

from __future__ import annotations

import datetime
import re
from typing import Any, Callable

from repro.core.base_nonnumerical import (
    ExplicitPreference,
    LayeredPreference,
    NegPreference,
    OTHERS,
    PosNegPreference,
    PosPosPreference,
    PosPreference,
)
from repro.core.base_numerical import (
    AroundPreference,
    BetweenPreference,
    HighestPreference,
    LowestPreference,
    ScorePreference,
)
from repro.core.constructors import (
    ParetoPreference,
    PrioritizedPreference,
    RankPreference,
)
from repro.core.preference import Preference, Row
from repro.psql.ast import (
    AroundAtom,
    BetweenAtom,
    BoolOp,
    Comparison,
    ElseChain,
    ExplicitAtom,
    HardBetween,
    HardExpr,
    HighestAtom,
    InList,
    IsNull,
    LikePattern,
    LowestAtom,
    NegAtom,
    NotOp,
    ParetoExpr,
    PosAtom,
    PrefExpr,
    PriorExpr,
    QualityExpr,
    RankExpr,
    ScoreAtom,
)
from repro.query.quality import QualityCondition


class TranslationError(ValueError):
    """Semantically invalid Preference SQL (e.g. ELSE across attributes)."""


_DATE_RE = re.compile(r"^(\d{4})[-/](\d{1,2})[-/](\d{1,2})$")


def coerce_date(value: Any) -> Any:
    """Turn ``'2001/11/23'``-shaped strings into ``datetime.date``."""
    if isinstance(value, str):
        match = _DATE_RE.match(value)
        if match:
            year, month, day = map(int, match.groups())
            return datetime.date(year, month, day)
    return value


# -- PREFERRING -> Preference -----------------------------------------------------

def translate_preferring(
    expr: PrefExpr,
    functions: dict[str, Callable[..., Any]] | None = None,
) -> Preference:
    """Build the preference term for one PREFERRING / CASCADE expression.

    ``functions`` resolves the names in ``SCORE(attr, f)`` and
    ``RANK(f)(...)``.
    """
    functions = functions or {}
    return _translate(expr, functions)


def _translate(expr: PrefExpr, functions: dict) -> Preference:
    if isinstance(expr, PosAtom):
        return PosPreference(expr.attribute, expr.values)
    if isinstance(expr, NegAtom):
        return NegPreference(expr.attribute, expr.values)
    if isinstance(expr, ElseChain):
        return _translate_else(expr)
    if isinstance(expr, AroundAtom):
        return AroundPreference(expr.attribute, coerce_date(expr.target))
    if isinstance(expr, BetweenAtom):
        return BetweenPreference(
            expr.attribute, coerce_date(expr.low), coerce_date(expr.up)
        )
    if isinstance(expr, LowestAtom):
        return LowestPreference(expr.attribute)
    if isinstance(expr, HighestAtom):
        return HighestPreference(expr.attribute)
    if isinstance(expr, ScoreAtom):
        fn = _resolve(functions, expr.function)
        return ScorePreference(expr.attribute, fn, name=expr.function)
    if isinstance(expr, ExplicitAtom):
        return ExplicitPreference(expr.attribute, expr.edges)
    if isinstance(expr, RankExpr):
        fn = _resolve(functions, expr.function)
        children = [_translate(op, functions) for op in expr.operands]
        bad = [c for c in children if not isinstance(c, ScorePreference)]
        if bad:
            raise TranslationError(
                f"RANK({expr.function}) needs SCORE-family operands; got "
                f"{', '.join(type(c).__name__ for c in bad)}"
            )
        return RankPreference(fn, children, name=expr.function)
    if isinstance(expr, ParetoExpr):
        return ParetoPreference(
            tuple(_translate(op, functions) for op in expr.operands)
        )
    if isinstance(expr, PriorExpr):
        return PrioritizedPreference(
            tuple(_translate(op, functions) for op in expr.operands)
        )
    raise TranslationError(f"unsupported preference expression {expr!r}")


def _resolve(functions: dict, name: str) -> Callable[..., Any]:
    try:
        return functions[name]
    except KeyError:
        raise TranslationError(
            f"unknown function {name!r}; register it with the executor "
            f"(known: {sorted(functions)})"
        ) from None


def _translate_else(expr: ElseChain) -> Preference:
    """``a ELSE b [ELSE c ...]``: a layered preference over one attribute.

    The common two-level forms map onto the paper's named constructors:
    POS ELSE POS -> POS/POS, POS ELSE NEG -> POS/NEG.  Longer all-POS
    chains with an optional trailing NEG build the general layered form.
    """
    atoms: list[PrefExpr] = []
    node: PrefExpr = expr
    while isinstance(node, ElseChain):
        atoms.append(node.first)
        node = node.second
    atoms.append(node)

    attribute = None
    for atom in atoms:
        if not isinstance(atom, (PosAtom, NegAtom)):
            raise TranslationError(
                "ELSE chains accept only set atoms (=, <>, IN, NOT IN); got "
                f"{type(atom).__name__}"
            )
        if attribute is None:
            attribute = atom.attribute
        elif atom.attribute != attribute:
            raise TranslationError(
                f"ELSE chain mixes attributes {attribute!r} and "
                f"{atom.attribute!r}"
            )
    neg_atoms = [a for a in atoms if isinstance(a, NegAtom)]
    if len(neg_atoms) > 1 or (neg_atoms and not isinstance(atoms[-1], NegAtom)):
        raise TranslationError(
            "an ELSE chain may end in at most one negative layer"
        )
    pos_layers = [frozenset(a.values) for a in atoms if isinstance(a, PosAtom)]
    neg_layer = frozenset(neg_atoms[0].values) if neg_atoms else None

    if len(pos_layers) == 2 and neg_layer is None:
        return PosPosPreference(attribute, pos_layers[0], pos_layers[1])
    if len(pos_layers) == 1 and neg_layer is not None:
        return PosNegPreference(attribute, pos_layers[0], neg_layer)
    layers: list = list(pos_layers) + [OTHERS]
    if neg_layer is not None:
        layers.append(neg_layer)
    return LayeredPreference(attribute, layers)


# -- WHERE -> predicate ---------------------------------------------------------------

def translate_where(expr: HardExpr) -> Callable[[Row], bool]:
    """Compile a WHERE tree into a row predicate."""

    def predicate(row: Row) -> bool:
        return _eval_hard(expr, row)

    return predicate


def _eval_hard(expr: HardExpr, row: Row) -> bool:
    if isinstance(expr, Comparison):
        value = row.get(expr.attribute)
        if value is None:
            return False
        other = expr.value
        try:
            if expr.op == "=":
                return value == other
            if expr.op == "<>":
                return value != other
            if expr.op == "<":
                return value < other
            if expr.op == "<=":
                return value <= other
            if expr.op == ">":
                return value > other
            if expr.op == ">=":
                return value >= other
        except TypeError:
            return False
        raise TranslationError(f"unknown comparison operator {expr.op!r}")
    if isinstance(expr, InList):
        value = row.get(expr.attribute)
        if value is None:
            return False
        return (value in expr.values) != expr.negated
    if isinstance(expr, LikePattern):
        value = row.get(expr.attribute)
        if not isinstance(value, str):
            return False
        return bool(_like_regex(expr.pattern).match(value)) != expr.negated
    if isinstance(expr, IsNull):
        return (row.get(expr.attribute) is None) != expr.negated
    if isinstance(expr, HardBetween):
        value = row.get(expr.attribute)
        if value is None:
            return False
        try:
            return expr.low <= value <= expr.up
        except TypeError:
            return False
    if isinstance(expr, BoolOp):
        if expr.op == "AND":
            return all(_eval_hard(op, row) for op in expr.operands)
        return any(_eval_hard(op, row) for op in expr.operands)
    if isinstance(expr, NotOp):
        return not _eval_hard(expr.operand, row)
    raise TranslationError(f"unsupported WHERE expression {expr!r}")


def _like_regex(pattern: str) -> re.Pattern:
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE)


# -- BUT ONLY -> quality conditions -------------------------------------------------

def translate_quality(expr: QualityExpr) -> QualityCondition:
    return QualityCondition(expr.kind, expr.attribute, expr.op, expr.bound)


# -- display --------------------------------------------------------------------------

def render_where(expr: HardExpr) -> str:
    """A compact WHERE rendering for plan labels."""
    from repro.psql import ast as A

    if isinstance(expr, A.Comparison):
        return f"{expr.attribute} {expr.op} {expr.value!r}"
    if isinstance(expr, A.InList):
        op = "NOT IN" if expr.negated else "IN"
        return f"{expr.attribute} {op} {expr.values!r}"
    if isinstance(expr, A.LikePattern):
        op = "NOT LIKE" if expr.negated else "LIKE"
        return f"{expr.attribute} {op} {expr.pattern!r}"
    if isinstance(expr, A.IsNull):
        return f"{expr.attribute} IS {'NOT ' if expr.negated else ''}NULL"
    if isinstance(expr, A.HardBetween):
        return f"{expr.attribute} BETWEEN {expr.low!r} AND {expr.up!r}"
    if isinstance(expr, A.BoolOp):
        inner = f" {expr.op} ".join(render_where(op) for op in expr.operands)
        return f"({inner})"
    if isinstance(expr, A.NotOp):
        return f"NOT {render_where(expr.operand)}"
    return "<where>"
