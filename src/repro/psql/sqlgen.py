"""The "plug-and-go" rewriting of Preference SQL into plain SQL92.

The paper credits Preference SQL's practical success to "a clever rewriting
of Preference SQL queries into SQL92 code", making it run unchanged on DB2,
Oracle 8i and MS SQL Server.  This module reproduces that translation: a
BMO query becomes a double query —

.. code-block:: sql

    SELECT t.* FROM car t
    WHERE <hard(t)>
      AND NOT EXISTS (SELECT 1 FROM car u
                      WHERE <hard(u)> AND <u strictly better than t>)

where the strictly-better condition is generated recursively from the
preference expression: POS-family atoms become CASE-level comparisons,
AROUND/BETWEEN become distance arithmetic, Pareto and PRIOR TO become the
Definition 8/9 boolean combinations.  The output targets our own in-memory
engine-free dialect of SQL92 (no vendor extensions beyond CASE and ABS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.psql import ast as A
from repro.psql.translate import TranslationError


def to_sql92(query: A.Query) -> str:
    """Rewrite one Preference SQL statement into SQL92 text."""
    select = "t.*" if query.selects_all else ", ".join(
        f"t.{name}" for name in query.select
    )
    table = query.table
    hard_t = _where_sql(query.where, "t") if query.where else None
    hard_u = _where_sql(query.where, "u") if query.where else None

    pref_exprs: list[A.PrefExpr] = []
    if query.preferring is not None:
        pref_exprs.append(query.preferring)
        pref_exprs.extend(query.cascades)

    lines = [f"SELECT {select}", f"FROM {table} t"]
    conditions: list[str] = []
    if hard_t:
        conditions.append(hard_t)
    if pref_exprs:
        combined: A.PrefExpr
        combined = (
            pref_exprs[0] if len(pref_exprs) == 1 else A.PriorExpr(tuple(pref_exprs))
        )
        better = _better_sql(combined, "u", "t")
        if query.grouping:
            # sigma[P groupby A]: dominators must share the group key.
            group_eq = " AND ".join(f"u.{g} = t.{g}" for g in query.grouping)
            better = f"({group_eq}) AND ({better})"
        inner_where = f"({hard_u}) AND ({better})" if hard_u else better
        conditions.append(
            "NOT EXISTS (SELECT 1 FROM "
            f"{table} u WHERE {inner_where})"
        )
    if conditions:
        lines.append("WHERE " + "\n  AND ".join(conditions))
    return "\n".join(lines)


# -- hard conditions ------------------------------------------------------------

def _literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value).replace("'", "''")
    return f"'{text}'"


def _where_sql(expr: A.HardExpr | None, alias: str) -> str:
    if expr is None:
        return "1=1"
    if isinstance(expr, A.Comparison):
        return f"{alias}.{expr.attribute} {expr.op} {_literal(expr.value)}"
    if isinstance(expr, A.InList):
        op = "NOT IN" if expr.negated else "IN"
        vals = ", ".join(_literal(v) for v in expr.values)
        return f"{alias}.{expr.attribute} {op} ({vals})"
    if isinstance(expr, A.LikePattern):
        op = "NOT LIKE" if expr.negated else "LIKE"
        return f"{alias}.{expr.attribute} {op} {_literal(expr.pattern)}"
    if isinstance(expr, A.IsNull):
        return (
            f"{alias}.{expr.attribute} IS "
            f"{'NOT ' if expr.negated else ''}NULL"
        )
    if isinstance(expr, A.HardBetween):
        return (
            f"{alias}.{expr.attribute} BETWEEN "
            f"{_literal(expr.low)} AND {_literal(expr.up)}"
        )
    if isinstance(expr, A.BoolOp):
        inner = f" {expr.op} ".join(
            f"({_where_sql(op, alias)})" for op in expr.operands
        )
        return inner
    if isinstance(expr, A.NotOp):
        return f"NOT ({_where_sql(expr.operand, alias)})"
    raise TranslationError(f"cannot render WHERE expression {expr!r}")


# -- parameterized emission (storage-backend prefilters) -------------------------
#
# ``_where_sql`` inlines literals — fine for the explain()-style SQL92
# text, wrong for anything that actually executes: quoting bugs, plan
# caches keyed on literals, and engines (SQLite vs Postgres) that
# disagree on placeholder syntax.  The storage backends therefore render
# the same expressions through a :class:`Dialect` with ``?``/``%s``
# placeholders and properly quoted identifiers.

@dataclass(frozen=True)
class Dialect:
    """Engine-specific SQL quirks the generator must respect."""

    name: str
    #: Positional parameter placeholder (``?`` qmark / ``%s`` format).
    placeholder: str
    #: Null-safe equality template for ``{col}`` against a placeholder —
    #: ``IS`` in SQLite, ``IS NOT DISTINCT FROM`` in Postgres.
    null_eq: str


SQLITE = Dialect(name="sqlite", placeholder="?", null_eq="{col} IS {ph}")
POSTGRES = Dialect(
    name="postgres", placeholder="%s", null_eq="{col} IS NOT DISTINCT FROM {ph}"
)


def quote_ident(name: str) -> str:
    """Double-quote an identifier (SQL92 style, shared by both dialects)."""
    return '"' + name.replace('"', '""') + '"'


def where_params(
    expr: A.HardExpr, dialect: Dialect
) -> tuple[str, tuple[Any, ...]]:
    """Render one hard condition with placeholders; returns (sql, params).

    Covers the pushable fragment plus LIKE/NOT for completeness — the
    *semantic* gate lives in :mod:`repro.storage.pushdown`, not here.
    """
    ph = dialect.placeholder
    if isinstance(expr, A.Comparison):
        return f"{quote_ident(expr.attribute)} {expr.op} {ph}", (expr.value,)
    if isinstance(expr, A.InList):
        op = "NOT IN" if expr.negated else "IN"
        slots = ", ".join(ph for _ in expr.values)
        column = quote_ident(expr.attribute)
        return f"{column} {op} ({slots})", tuple(expr.values)
    if isinstance(expr, A.LikePattern):
        op = "NOT LIKE" if expr.negated else "LIKE"
        return f"{quote_ident(expr.attribute)} {op} {ph}", (expr.pattern,)
    if isinstance(expr, A.IsNull):
        negation = "NOT " if expr.negated else ""
        return f"{quote_ident(expr.attribute)} IS {negation}NULL", ()
    if isinstance(expr, A.HardBetween):
        column = quote_ident(expr.attribute)
        return f"{column} BETWEEN {ph} AND {ph}", (expr.low, expr.up)
    if isinstance(expr, A.BoolOp):
        parts: list[str] = []
        params: list[Any] = []
        for operand in expr.operands:
            sql, values = where_params(operand, dialect)
            parts.append(f"({sql})")
            params.extend(values)
        return f" {expr.op} ".join(parts), tuple(params)
    if isinstance(expr, A.NotOp):
        sql, values = where_params(expr.operand, dialect)
        return f"NOT ({sql})", values
    raise TranslationError(f"cannot parameterize WHERE expression {expr!r}")


def prefilter_sql(
    table: str,
    columns: Sequence[str],
    conjuncts: Sequence[A.HardExpr],
    dialect: Dialect,
    order_by: str | None = None,
) -> tuple[str, tuple[Any, ...]]:
    """The SELECT a storage backend runs for a pushed-down prefilter.

    Conjuncts AND together; ``order_by`` (the backend's insertion-order
    row id) keeps SQL results bit-identical to the in-memory scan order.
    """
    select = ", ".join(quote_ident(c) for c in columns) or "*"
    sql = f"SELECT {select} FROM {quote_ident(table)}"
    params: list[Any] = []
    if conjuncts:
        parts = []
        for conjunct in conjuncts:
            text, values = where_params(conjunct, dialect)
            parts.append(f"({text})")
            params.extend(values)
        sql += " WHERE " + " AND ".join(parts)
    if order_by:
        sql += f" ORDER BY {quote_ident(order_by)}"
    return sql, tuple(params)


# -- better-than conditions ----------------------------------------------------------

def _attributes_of(expr: A.PrefExpr) -> tuple[str, ...]:
    """Attribute names a preference expression touches (ordered union)."""
    if isinstance(expr, (A.PosAtom, A.NegAtom, A.AroundAtom, A.BetweenAtom,
                         A.LowestAtom, A.HighestAtom, A.ScoreAtom,
                         A.ExplicitAtom)):
        return (expr.attribute,)
    if isinstance(expr, A.ElseChain):
        return _attributes_of(expr.first)
    if isinstance(expr, (A.ParetoExpr, A.PriorExpr, A.RankExpr)):
        seen: dict[str, None] = {}
        for op in expr.operands:
            for a in _attributes_of(op):
                seen[a] = None
        return tuple(seen)
    raise TranslationError(f"cannot determine attributes of {expr!r}")


def _eq_sql(expr: A.PrefExpr, a: str, b: str) -> str:
    """Projection equality of two aliases on the expression's attributes."""
    parts = [f"{a}.{attr} = {b}.{attr}" for attr in _attributes_of(expr)]
    return " AND ".join(parts)


def _level_case(expr: A.PrefExpr, alias: str) -> str:
    """A CASE expression computing the layered level of ``alias``'s value."""
    atoms: list[A.PrefExpr] = []
    node: A.PrefExpr = expr
    while isinstance(node, A.ElseChain):
        atoms.append(node.first)
        node = node.second
    atoms.append(node)
    attr = _attributes_of(expr)[0]
    pos_layers = [a for a in atoms if isinstance(a, A.PosAtom)]
    neg_layers = [a for a in atoms if isinstance(a, A.NegAtom)]
    whens = []
    level = 1
    for atom in pos_layers:
        vals = ", ".join(_literal(v) for v in atom.values)
        whens.append(f"WHEN {alias}.{attr} IN ({vals}) THEN {level}")
        level += 1
    others_level = level
    level += 1
    for atom in neg_layers:
        vals = ", ".join(_literal(v) for v in atom.values)
        whens.append(f"WHEN {alias}.{attr} IN ({vals}) THEN {level}")
        level += 1
    return f"(CASE {' '.join(whens)} ELSE {others_level} END)"


def _distance_sql(expr: A.BetweenAtom | A.AroundAtom, alias: str) -> str:
    attr = f"{alias}.{expr.attribute}"
    if isinstance(expr, A.AroundAtom):
        return f"ABS({attr} - {_literal(expr.target)})"
    low, up = _literal(expr.low), _literal(expr.up)
    return (
        f"(CASE WHEN {attr} < {low} THEN {low} - {attr} "
        f"WHEN {attr} > {up} THEN {attr} - {up} ELSE 0 END)"
    )


def _score_sql(expr: A.PrefExpr, alias: str) -> str:
    """A numeric expression whose order mirrors the preference."""
    if isinstance(expr, A.ScoreAtom):
        return f"{expr.function}({alias}.{expr.attribute})"
    if isinstance(expr, (A.AroundAtom, A.BetweenAtom)):
        return f"-{_distance_sql(expr, alias)}"
    if isinstance(expr, A.LowestAtom):
        return f"-{alias}.{expr.attribute}"
    if isinstance(expr, A.HighestAtom):
        return f"{alias}.{expr.attribute}"
    if isinstance(expr, A.RankExpr):
        inner = ", ".join(_score_sql(op, alias) for op in expr.operands)
        return f"{expr.function}({inner})"
    raise TranslationError(f"{expr!r} has no score rendering")


def _better_sql(expr: A.PrefExpr, u: str, t: str) -> str:
    """SQL for "``u``'s value is strictly better than ``t``'s" under ``expr``."""
    if isinstance(expr, A.PosAtom):
        vals = ", ".join(_literal(v) for v in expr.values)
        attr = expr.attribute
        return f"{u}.{attr} IN ({vals}) AND {t}.{attr} NOT IN ({vals})"
    if isinstance(expr, A.NegAtom):
        vals = ", ".join(_literal(v) for v in expr.values)
        attr = expr.attribute
        return f"{t}.{attr} IN ({vals}) AND {u}.{attr} NOT IN ({vals})"
    if isinstance(expr, A.ElseChain):
        return f"{_level_case(expr, u)} < {_level_case(expr, t)}"
    if isinstance(expr, (A.AroundAtom, A.BetweenAtom)):
        return f"{_distance_sql(expr, u)} < {_distance_sql(expr, t)}"
    if isinstance(expr, A.LowestAtom):
        return f"{u}.{expr.attribute} < {t}.{expr.attribute}"
    if isinstance(expr, A.HighestAtom):
        return f"{u}.{expr.attribute} > {t}.{expr.attribute}"
    if isinstance(expr, (A.ScoreAtom, A.RankExpr)):
        return f"{_score_sql(expr, u)} > {_score_sql(expr, t)}"
    if isinstance(expr, A.ExplicitAtom):
        return _explicit_better(expr, u, t)
    if isinstance(expr, A.ParetoExpr):
        # Definition 8: each component better-or-equal, some strictly better.
        tolerable = " AND ".join(
            f"(({_better_sql(op, u, t)}) OR ({_eq_sql(op, u, t)}))"
            for op in expr.operands
        )
        strict = " OR ".join(
            f"({_better_sql(op, u, t)})" for op in expr.operands
        )
        return f"({tolerable}) AND ({strict})"
    if isinstance(expr, A.PriorExpr):
        # Definition 9, right-folded lexicographic composition.
        ops = list(expr.operands)
        clause = f"({_better_sql(ops[-1], u, t)})"
        for op in reversed(ops[:-1]):
            clause = (
                f"(({_better_sql(op, u, t)}) OR "
                f"(({_eq_sql(op, u, t)}) AND {clause}))"
            )
        return clause
    raise TranslationError(f"cannot render better-than for {expr!r}")


def _explicit_better(expr: A.ExplicitAtom, u: str, t: str) -> str:
    from repro.core.digraph import closure_pairs

    attr = expr.attribute
    pairs = sorted(closure_pairs(expr.edges), key=repr)
    nodes = sorted({v for e in expr.edges for v in e}, key=repr)
    edge_clauses = [
        f"({t}.{attr} = {_literal(worse)} AND {u}.{attr} = {_literal(better)})"
        for worse, better in pairs
    ]
    in_graph = ", ".join(_literal(v) for v in nodes)
    others_clause = (
        f"({t}.{attr} NOT IN ({in_graph}) AND {u}.{attr} IN ({in_graph}))"
    )
    return " OR ".join([*edge_clauses, others_clause])
