"""Syntax trees for Preference SQL.

Two expression families:

* *hard* boolean expressions (WHERE): comparisons, IN, LIKE, IS NULL,
  AND/OR/NOT — the exact-match world;
* *soft* preference expressions (PREFERRING / CASCADE): atoms like
  ``price AROUND 40000`` composed with AND (Pareto), PRIOR TO
  (prioritized) and ELSE (POS/POS, POS/NEG layering).

Plus the query node tying them together with GROUPING, BUT ONLY and TOP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


# -- hard (WHERE) expressions ---------------------------------------------------

class HardExpr:
    """Marker base class for WHERE expressions."""


@dataclass(frozen=True)
class Comparison(HardExpr):
    attribute: str
    op: str  # = <> < <= > >=
    value: Any


@dataclass(frozen=True)
class InList(HardExpr):
    attribute: str
    values: tuple[Any, ...]
    negated: bool = False


@dataclass(frozen=True)
class LikePattern(HardExpr):
    attribute: str
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class IsNull(HardExpr):
    attribute: str
    negated: bool = False


@dataclass(frozen=True)
class HardBetween(HardExpr):
    attribute: str
    low: Any
    up: Any


@dataclass(frozen=True)
class BoolOp(HardExpr):
    op: str  # AND / OR
    operands: tuple[HardExpr, ...]


@dataclass(frozen=True)
class NotOp(HardExpr):
    operand: HardExpr


# -- soft (PREFERRING) expressions -------------------------------------------------

class PrefExpr:
    """Marker base class for preference expressions."""


@dataclass(frozen=True)
class PosAtom(PrefExpr):
    """``attr = v`` / ``attr IN (...)`` — a POS wish."""

    attribute: str
    values: tuple[Any, ...]


@dataclass(frozen=True)
class NegAtom(PrefExpr):
    """``attr <> v`` / ``attr NOT IN (...)`` — a NEG wish."""

    attribute: str
    values: tuple[Any, ...]


@dataclass(frozen=True)
class ElseChain(PrefExpr):
    """``first ELSE second``: POS/POS or POS/NEG depending on ``second``."""

    first: PrefExpr
    second: PrefExpr


@dataclass(frozen=True)
class AroundAtom(PrefExpr):
    attribute: str
    target: Any


@dataclass(frozen=True)
class BetweenAtom(PrefExpr):
    attribute: str
    low: Any
    up: Any


@dataclass(frozen=True)
class LowestAtom(PrefExpr):
    attribute: str


@dataclass(frozen=True)
class HighestAtom(PrefExpr):
    attribute: str


@dataclass(frozen=True)
class ScoreAtom(PrefExpr):
    """``SCORE(attr, fname)`` — fname resolved in the function registry."""

    attribute: str
    function: str


@dataclass(frozen=True)
class ExplicitAtom(PrefExpr):
    """``EXPLICIT(attr, (worse, better), ...)``."""

    attribute: str
    edges: tuple[tuple[Any, Any], ...]


@dataclass(frozen=True)
class RankExpr(PrefExpr):
    """``RANK(fname)(p1, p2, ...)`` — numerical accumulation."""

    function: str
    operands: tuple[PrefExpr, ...]


@dataclass(frozen=True)
class ParetoExpr(PrefExpr):
    """``p1 AND p2 AND ...`` — equally important."""

    operands: tuple[PrefExpr, ...]


@dataclass(frozen=True)
class PriorExpr(PrefExpr):
    """``p1 PRIOR TO p2 PRIOR TO ...`` — ordered importance."""

    operands: tuple[PrefExpr, ...]


# -- quality conditions (BUT ONLY) ---------------------------------------------------

@dataclass(frozen=True)
class QualityExpr:
    """``LEVEL(attr) op bound`` or ``DISTANCE(attr) op bound``."""

    kind: str  # "level" | "distance"
    attribute: str
    op: str
    bound: Any


# -- the query -------------------------------------------------------------------------

@dataclass(frozen=True)
class Query:
    """One parsed Preference SQL statement."""

    select: tuple[str, ...] | str  # "*" or attribute names
    table: str
    where: HardExpr | None = None
    preferring: PrefExpr | None = None
    cascades: tuple[PrefExpr, ...] = ()
    grouping: tuple[str, ...] = ()
    but_only: tuple[QualityExpr, ...] = ()
    top: int | None = None
    order_by: tuple[tuple[str, bool], ...] = ()  # (attribute, descending)
    limit: int | None = None

    @property
    def selects_all(self) -> bool:
        return self.select == "*"
