"""Sessions: the stateful home of catalogs, functions, and plan caches.

A :class:`Session` owns

* a :class:`~repro.relations.catalog.Catalog` of named relations,
* a registry of scoring / combining functions for SCORE and RANK atoms,
* a memoized plan cache keyed on (query fingerprint, relation name,
  relation version) — repeated queries skip planning entirely, and any
  catalog change to a relation invalidates its cached plans by version,
* a :meth:`~Session.column_store` accessor exposing the columnar
  materialization of catalog relations, memoized per (name, version).

It is the single entry point the fluent API, the Preference SQL front end,
and programmatic callers share::

    from repro import Session, AROUND, POS, pareto

    s = Session({"car": car_rows})
    best = (
        s.query("car")
        .where(make="Opel")
        .prefer(pareto(POS("color", {"red"}), AROUND("price", 40000)))
        .run()
    )
    same = s.sql(
        "SELECT * FROM car WHERE make = 'Opel' "
        "PREFERRING color = 'red' AND price AROUND 40000"
    )
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Any, Callable, Mapping, NamedTuple, Sequence

from repro.query.api import PreferenceQuery
from repro.query.plan import Plan
from repro.relations.catalog import Catalog
from repro.relations.relation import Relation, Row
from repro.storage import CatalogStorage, StorageBackend, open_backend

#: Combining functions available to RANK(...) and SCORE(...) out of the box.
DEFAULT_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "sum": lambda *xs: sum(xs),
    "avg": lambda *xs: sum(xs) / len(xs),
    "min": lambda *xs: min(xs),
    "max": lambda *xs: max(xs),
    "product": lambda *xs: math.prod(xs),
    "identity": lambda x: x,
    "negate": lambda x: -x,
}


class CacheInfo(NamedTuple):
    """Plan-cache statistics, `functools.lru_cache`-style."""

    hits: int
    misses: int
    size: int


@dataclass(frozen=True)
class MutationEvent:
    """One versioned catalog mutation, as delivered to mutation hooks.

    ``inserted`` / ``deleted`` are the row batches the mutation applied;
    ``version`` is the relation's catalog version *after* the mutation.
    """

    relation: str
    inserted: tuple[Row, ...] = ()
    deleted: tuple[Row, ...] = ()
    version: int = 0


class Session:
    """A preference query session bound to a catalog of relations."""

    def __init__(
        self,
        catalog: Catalog | Mapping[str, Any] | None = None,
        functions: Mapping[str, Callable[..., Any]] | None = None,
        storage: StorageBackend | str | None = None,
        data_dir: str | None = None,
    ):
        if catalog is None:
            self.catalog = Catalog()
        elif isinstance(catalog, Catalog):
            self.catalog = catalog
        else:
            self.catalog = Catalog()
            for name, data in catalog.items():
                self.register(name, data)
        # The storage binding observes the catalog from here on: it
        # mirrors relations into the backend (SQL prefilter pushdown)
        # and, when data_dir is set, write-ahead-logs every mutation and
        # recovers the previous catalog state before anything else runs.
        backend = (storage if isinstance(storage, StorageBackend)
                   else open_backend(storage))
        self.storage = CatalogStorage(self.catalog, backend,
                                      directory=data_dir)
        self.functions: dict[str, Callable[..., Any]] = dict(DEFAULT_FUNCTIONS)
        if functions:
            self.functions.update(functions)
        self._plan_cache: dict[tuple, Plan] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._column_cache: dict[tuple[str, int], Any] = {}
        self._stats_cache: dict[tuple[str, int], Any] = {}
        # One reentrant lock guards the plan cache, the column-store cache,
        # and catalog mutations, so worker threads (the preference server
        # runs winnows in an executor) can share one session.  Plan
        # *execution* never takes the lock — only cache bookkeeping and the
        # catalog swap do, so concurrent queries stay parallel.
        self._lock = threading.RLock()
        #: Serializes whole mutations *including* hook delivery, so hooks
        #: always observe MutationEvents in catalog-version order (the
        #: invariant continuous views depend on).  Public and reentrant:
        #: the serving layer shares it to keep view seeding atomic with
        #: mutations — one lock, so no ordering inversions are possible.
        self.mutation_lock = threading.RLock()
        self._mutation_hooks: list[Callable[[MutationEvent], None]] = []

    # -- catalog management -----------------------------------------------------

    def register(
        self,
        name: str | Relation,
        data: Relation | Sequence[Mapping[str, Any]] | None = None,
        replace: bool = False,
    ) -> Relation:
        """Register a relation under ``name``.

        Accepts a :class:`Relation` directly (optionally renamed), or a
        name plus rows / a relation.  Returns the registered relation.
        """
        if isinstance(name, Relation):
            relation = name
        elif isinstance(data, Relation):
            relation = data.with_name(name)
        elif data is not None:
            relation = Relation.from_dicts(name, list(data))
        else:
            raise TypeError("register() needs a Relation or a name plus rows")
        self.catalog.register(relation, replace=replace)
        return relation

    def register_function(self, name: str, fn: Callable[..., Any]) -> None:
        """Register a scoring/combining function for SCORE / RANK atoms."""
        self.functions[name] = fn

    def declare_constraints(self, name: str, *constraints: Any) -> Relation:
        """Attach declared integrity constraints to a catalog relation.

        Re-registers ``name`` with the constraints added to its schema
        (see :meth:`Relation.declare`) and returns the new relation.  The
        replacement bumps the catalog version, so cached plans over the
        old, constraint-free schema are naturally invalidated.  Declared
        constraints are trusted — they are not re-verified against the
        rows — and feed the static analyzer and the semantic rewrite
        rules (``winnow_to_sort`` / ``remove_redundant_winnow``)
        alongside statistics-derived ones.
        """
        if not constraints:
            raise ValueError("declare_constraints() needs at least one")
        declared = self.catalog.get(name).declare(*constraints)
        self.catalog.register(declared, replace=True)
        return declared

    # -- mutations --------------------------------------------------------------

    def on_mutation(
        self, hook: Callable[[MutationEvent], None]
    ) -> Callable[[MutationEvent], None]:
        """Register a hook called after every :meth:`insert_rows` /
        :meth:`delete_rows`, with the :class:`MutationEvent` applied.

        Hooks run synchronously, in registration order, under
        :attr:`mutation_lock` (but never under the cache lock) — so a
        hook observing version ``n`` has seen every event before ``n``,
        the invariant the serving layer's continuous views depend on.
        Returns the hook (decorator-friendly); remove with
        :meth:`off_mutation`.
        """
        self._mutation_hooks.append(hook)
        return hook

    def off_mutation(self, hook: Callable[[MutationEvent], None]) -> None:
        """Unregister a mutation hook (a no-op if it is not registered)."""
        try:
            self._mutation_hooks.remove(hook)
        except ValueError:
            pass

    def _fire_mutation(self, event: MutationEvent) -> None:
        for hook in list(self._mutation_hooks):
            hook(event)

    def insert_rows(
        self, name: str, rows: Sequence[Mapping[str, Any]]
    ) -> MutationEvent:
        """Append rows to a catalog relation as one versioned mutation.

        Bumps the relation's catalog version (invalidating its cached
        plans and column stores — and only its), then fires the mutation
        hooks.  Returns the :class:`MutationEvent` applied.
        """
        cooked = [dict(r) for r in rows]  # accept iterators: iterate once
        with self.mutation_lock:
            with self._lock:
                new = self.catalog.insert_rows(name, cooked)
                version = self.catalog.version(name)
                self._invalidate_locked(name)
            event = MutationEvent(
                relation=new.name,
                inserted=tuple(cooked),
                version=version,
            )
            self._fire_mutation(event)
        return event

    def delete_rows(
        self,
        name: str,
        rows: Sequence[Mapping[str, Any]] | None = None,
        predicate: Callable[[Row], bool] | None = None,
    ) -> MutationEvent:
        """Delete rows from a catalog relation as one versioned mutation.

        Pass ``rows`` (each removes one matching stored row, bag
        semantics) or ``predicate``.  Same invalidation and hook contract
        as :meth:`insert_rows`; the event carries the rows actually
        deleted.
        """
        with self.mutation_lock:
            with self._lock:
                new, deleted = self.catalog.delete_rows(
                    name, rows=rows, predicate=predicate
                )
                version = self.catalog.version(name)
                self._invalidate_locked(name)
            event = MutationEvent(
                relation=new.name,
                deleted=tuple(deleted),
                version=version,
            )
            self._fire_mutation(event)
        return event

    def invalidate(self, name: str) -> None:
        """Eagerly drop cached plans and column stores for one relation.

        Mutations call this automatically; it exists for callers that
        mutate the catalog directly (``session.catalog.register(...,
        replace=True)``) and want the caches trimmed now rather than at
        the next version-keyed miss.
        """
        with self._lock:
            self._invalidate_locked(name)

    def _invalidate_locked(self, name: str) -> None:
        key = name.lower()
        version = self.catalog.version(key)
        for k in [
            k for k in self._plan_cache if k[1] == key and k[2] < version
        ]:
            del self._plan_cache[k]
        for k in [
            k for k in self._column_cache if k[0] == key and k[1] < version
        ]:
            del self._column_cache[k]
        for k in [
            k for k in self._stats_cache if k[0] == key and k[1] < version
        ]:
            del self._stats_cache[k]

    # -- durability -------------------------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        """Snapshot the catalog and truncate the write-ahead log.

        Requires a durable session (``Session(data_dir=...)``).  Runs
        under the mutation lock so the snapshot is a consistent cut of
        the mutation stream.
        """
        with self.mutation_lock:
            return self.storage.checkpoint()

    def close(self) -> None:
        """Release storage resources (WAL handle, backend connections)."""
        self.storage.close()

    # -- queries ----------------------------------------------------------------

    def query(self, relation_name: str) -> PreferenceQuery:
        """Start a fluent :class:`PreferenceQuery` over a catalog relation.

        Resolution is lazy: the relation is looked up (and the plan built)
        only when a terminal method runs.
        """
        return PreferenceQuery(("catalog", relation_name), session=self)

    def sql_query(self, text: str) -> PreferenceQuery:
        """Translate one Preference SQL statement into a fluent query.

        The returned query is indistinguishable from a hand-chained one —
        both front ends share the planning pipeline and the plan cache —
        but remembers its parse tree so :meth:`PreferenceQuery.to_sql`
        reproduces the statement faithfully.
        """
        from repro.psql.parser import parse
        from repro.psql.translate import (
            TranslationError,
            translate_preferring,
            translate_quality,
        )

        parsed = parse(text)
        if parsed.preferring is None:
            for clause, value in (
                ("TOP", parsed.top),
                ("GROUPING", parsed.grouping),
                ("BUT ONLY", parsed.but_only),
            ):
                if value:
                    raise TranslationError(
                        f"{clause} needs a PREFERRING clause to rank by"
                    )
        q = self.query(parsed.table)
        if parsed.where is not None:
            q = q.where(parsed.where)
        if parsed.preferring is not None:
            q = q.prefer(translate_preferring(parsed.preferring, self.functions))
            for stage in parsed.cascades:
                q = q.cascade(translate_preferring(stage, self.functions))
        if parsed.grouping:
            q = q.groupby(*parsed.grouping)
        if parsed.but_only:
            q = q.but_only(*(translate_quality(b) for b in parsed.but_only))
        if parsed.top is not None:
            q = q.top(parsed.top)
        if parsed.order_by:
            q = q.order_by(*parsed.order_by)
        if not parsed.selects_all:
            q = q.select(*parsed.select)
        if parsed.limit is not None:
            q = q.limit(parsed.limit)
        return q._with_sql_ast(parsed)

    def sql(self, text: str) -> Relation:
        """Parse, plan, and run one Preference SQL statement."""
        return self.sql_query(text).run()

    def explain_sql(self, text: str) -> str:
        """The plan text for a Preference SQL statement, without running it."""
        return self.sql_query(text).explain()

    # -- plan cache -------------------------------------------------------------

    def cached_plan(self, key: tuple, build: Callable[[], Plan]) -> Plan:
        """Fetch a memoized plan, building and storing it on first miss.

        ``key`` is ``(fingerprint, relation_name, relation_version)``.
        Cached plans carry their rewrite trace, so a cache hit replays the
        rewritten plan *and* its provenance; the fingerprint embeds
        :data:`repro.query.rewrite.RULESET_VERSION`, so plans rewritten by
        an outdated rule set can never be served.
        Storing a plan evicts same-relation entries with older versions:
        the version counter only grows, so those can never hit again and
        would otherwise pin the superseded relations' rows via their Scan
        nodes.
        """
        with self._lock:
            plan = self._plan_cache.get(key)
            if plan is not None:
                self._cache_hits += 1
                return plan
            self._cache_misses += 1
        # Planning happens outside the lock (it can be expensive and never
        # touches the caches); concurrent same-key misses both plan, and
        # the identical results race benignly into the cache.
        plan = build()
        with self._lock:
            _, name, version = key
            stale = [
                k for k in self._plan_cache if k[1] == name and k[2] < version
            ]
            for k in stale:
                del self._plan_cache[k]
            self._plan_cache[key] = plan
        return plan

    def cache_info(self) -> CacheInfo:
        """Hit/miss/size statistics of the plan cache."""
        with self._lock:
            return CacheInfo(
                self._cache_hits, self._cache_misses, len(self._plan_cache)
            )

    def clear_plan_cache(self) -> None:
        """Drop all memoized plans and reset the hit/miss counters."""
        with self._lock:
            self._plan_cache.clear()
            self._cache_hits = 0
            self._cache_misses = 0

    # -- columnar materialization -----------------------------------------------

    def column_store(self, name: str) -> Any:
        """The columnar materialization of a catalog relation, for callers.

        Returns a :class:`repro.engine.columns.ColumnStore` over the
        current version of ``name``, memoized per ``(name, version)``:
        re-registering or dropping the relation bumps its catalog version,
        which both retires stale entries and keys the fresh one.

        This is a *convenience accessor* for programmatic use of the
        engine; columnar plan execution does not route through it — it
        reads :meth:`Relation.columns` directly, which caches the vectors
        on the (immutable, per-version) relation instance, so winnows pay
        materialization once per catalog version either way.  The store
        returned here shares those same cached vectors.
        """
        from repro.engine.columns import ColumnStore

        with self._lock:
            key = (name.lower(), self.catalog.version(name))
            store = self._column_cache.get(key)
            relation = None if store is not None else self.catalog.get(name)
        if store is None:
            # Materialization runs outside the lock; a concurrent
            # same-version build produces an identical store.
            store = ColumnStore.from_relation(relation)
            with self._lock:
                stale = [
                    k for k in self._column_cache
                    if k[0] == key[0] and k[1] < key[1]
                ]
                for k in stale:
                    del self._column_cache[k]
                self._column_cache.setdefault(key, store)
                store = self._column_cache[key]
        return store

    def table_stats(self, name: str) -> Any:
        """Per-column statistics of a catalog relation, for the cost model.

        Returns a :class:`repro.relations.stats.TableStats` over the
        current version of ``name``, memoized per ``(name, version)`` —
        mutations bump the version, retiring stale statistics exactly
        like cached plans and column stores.  Statistics are *lazy*: the
        object is O(1) to build and each column is profiled on first
        access, so registering a huge relation costs nothing until the
        planner actually consults a column.

        Plan building reads :meth:`Relation.stats` directly (cached on
        the immutable per-version relation instance — the same object
        this accessor returns), so winnows pay each column's statistics
        pass once per catalog version either way.
        """
        with self._lock:
            key = (name.lower(), self.catalog.version(name))
            stats = self._stats_cache.get(key)
            if stats is None:
                stats = self.catalog.get(name).stats()
                stale = [
                    k for k in self._stats_cache
                    if k[0] == key[0] and k[1] < key[1]
                ]
                for k in stale:
                    del self._stats_cache[k]
                self._stats_cache[key] = stats
        return stats

    def __repr__(self) -> str:
        return (
            f"Session({self.catalog.names()}, "
            f"{len(self.functions)} functions, "
            f"{len(self._plan_cache)} cached plans)"
        )
