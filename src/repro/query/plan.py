"""Query plans for preference queries.

Plans are small operator trees over the relational substrate; the optimizer
(:mod:`repro.query.optimizer`) builds them, ``execute()`` runs them, and
``explain()`` prints them — including which algebraic rewrite rules fired,
so users can see the paper's laws at work on their own queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.preference import Preference, Row
from repro.query.bmo import winnow, winnow_groupby
from repro.query.quality import QualityCondition, but_only
from repro.query.topk import k_best
from repro.relations.relation import Relation

def _algorithm_label(algorithm: Any) -> str:
    if callable(algorithm):
        return getattr(algorithm, "__name__", repr(algorithm))
    return str(algorithm)


def _cost_lines(cost: Any, pad: str) -> list[str]:
    """Render a winnow node's backend decision for ``explain()``.

    ``cost`` is the :class:`repro.query.optimizer.BackendChoice` the
    planner attached (None when the decision was forced by ``using()`` or
    never arose): one line for the decision rationale, one for the
    :class:`~repro.query.optimizer.CostEstimate` numbers when the cost
    model ran.
    """
    if cost is None:
        return []
    out = [f"{pad}  decision: {cost.reason}"]
    estimate = getattr(cost, "cost", None)
    if estimate is not None:
        out.append(f"{pad}  {estimate.describe()}")
    return out


class PlanNode:
    """Base class for plan operators."""

    def execute(self) -> Relation:
        raise NotImplementedError

    def lines(self, indent: int = 0) -> list[str]:
        raise NotImplementedError

    def explain(self) -> str:
        return "\n".join(self.lines())


@dataclass(frozen=True)
class Scan(PlanNode):
    """Leaf: read a base relation."""

    relation: Relation

    def execute(self) -> Relation:
        return self.relation

    def lines(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        return [
            f"{pad}Scan[{self.relation.name}] "
            f"({len(self.relation)} rows)"
        ]


@dataclass(frozen=True)
class StorageScan(PlanNode):
    """Leaf: read a base relation through a SQL storage-backend mirror.

    Carries the rigid WHERE conjuncts the rewriter pushed into storage
    (``conjuncts`` — the same ``(predicate, label, ast)`` triples a
    :class:`HardSelect` would hold) plus the parameterized SQL they
    render to.  ``version`` is the catalog version the plan was built
    against: at execution time the backend only answers when its mirror
    still sits at that exact version, otherwise the node evaluates the
    conjuncts in Python over its own immutable relation snapshot — the
    result is bit-identical either way, the mirror is purely a fast
    path.
    """

    relation: Relation
    table: str
    backend: Any = None
    version: int = 0
    #: Absorbed conjuncts, in original WHERE order.
    conjuncts: tuple[tuple[Callable[[Row], bool], str, Any], ...] = ()
    #: The prefilter SQL (display form; execution re-renders per call).
    sql: str = ""
    params: tuple[Any, ...] = ()

    def absorb(
        self, conjunct: tuple[Callable[[Row], bool], str, Any]
    ) -> "StorageScan":
        """A new scan with one more pushed-down conjunct."""
        conjuncts = (*self.conjuncts, conjunct)
        sql, params = self.backend.render_prefilter(
            self.table, tuple(ast for _, _, ast in conjuncts)
        )
        return StorageScan(self.relation, self.table, self.backend,
                           self.version, conjuncts, sql, tuple(params))

    def execute(self) -> Relation:
        if not self.conjuncts:
            return self.relation
        rows = None
        if self.backend is not None:
            rows = self.backend.prefilter(
                self.table, tuple(ast for _, _, ast in self.conjuncts),
                self.version,
            )
        if rows is None:
            out = self.relation
            for predicate, _, _ in self.conjuncts:
                out = out.select(predicate)
            return out
        return Relation(self.relation.name, self.relation.schema, rows,
                        validate=False)

    def lines(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        backend = getattr(self.backend, "name", "?")
        out = [
            f"{pad}StorageScan[{self.relation.name}] backend={backend} "
            f"({len(self.relation)} rows @v{self.version})"
        ]
        if self.sql:
            out.append(f"{pad}  pushdown: {self.sql}")
            if self.params:
                out.append(f"{pad}  params: {list(self.params)!r}")
        return out


@dataclass(frozen=True)
class HardSelect(PlanNode):
    """Exact-match selection — the hard constraints of the WHERE clause.

    Applied *before* the preference operator ("push preference" in reverse:
    hard constraints shrink the input the soft constraints must rank).
    """

    child: PlanNode
    predicate: Callable[[Row], bool]
    label: str = "<predicate>"
    #: Preference SQL AST provenance (a :class:`repro.psql.ast.HardExpr`),
    #: when known.  The rewrite engine's rigidity / constant-propagation
    #: analyses are syntactic, so bare callables (ast=None) are opaque to
    #: them and simply stay where the builder put them.
    ast: Any = None

    def execute(self) -> Relation:
        return self.child.execute().select(self.predicate)

    def lines(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        return [f"{pad}HardSelect[{self.label}]", *self.child.lines(indent + 1)]


@dataclass(frozen=True)
class PreferenceSelect(PlanNode):
    """The BMO operator ``sigma[P](...)`` with a chosen algorithm."""

    child: PlanNode
    pref: Preference
    algorithm: Any = "bnl"
    #: The planner's :class:`~repro.query.optimizer.BackendChoice`, when
    #: the backend decision was cost-modelled (explain() prints it).
    cost: Any = None

    def execute(self) -> Relation:
        return winnow(self.pref, self.child.execute(), algorithm=self.algorithm)

    def lines(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        return [
            f"{pad}PreferenceSelect[{self.pref!r}] "
            f"algorithm={_algorithm_label(self.algorithm)}",
            *_cost_lines(self.cost, pad),
            *self.child.lines(indent + 1),
        ]


@dataclass(frozen=True)
class ColumnarPreferenceSelect(PlanNode):
    """``sigma[P](...)`` on the columnar backend (:mod:`repro.engine`).

    Chosen by the planner for large Pareto-of-chains winnows (or forced via
    ``PreferenceQuery.backend("columnar")``): dominance is evaluated
    block-wise over rank-encoded column vectors — NumPy-vectorized when
    available, pure-Python block sweeps otherwise — instead of per-row-pair
    ``pref._lt`` calls.  Results are identical to the row engine's.
    """

    child: PlanNode
    pref: Preference
    strategy: str = "sfs"
    #: >1 = partition-and-merge parallel execution on the shared worker
    #: pool (:mod:`repro.engine.parallel`); results are identical.
    partitions: int = 1
    #: The planner's :class:`~repro.query.optimizer.BackendChoice`, when
    #: the backend decision was cost-modelled (explain() prints it).
    cost: Any = None

    def execute(self) -> Relation:
        from repro.engine.columnar import columnar_winnow

        return columnar_winnow(
            self.pref, self.child.execute(), self.strategy,
            partitions=self.partitions,
        )

    def lines(self, indent: int = 0) -> list[str]:
        from repro.engine.backend import backend_label

        pad = "  " * indent
        parallel = (
            f" partitions={self.partitions}" if self.partitions > 1 else ""
        )
        return [
            f"{pad}ColumnarPreferenceSelect[{self.pref!r}] "
            f"backend=columnar kernel=v{self.strategy}({backend_label()})"
            f"{parallel}",
            *_cost_lines(self.cost, pad),
            *self.child.lines(indent + 1),
        ]


@dataclass(frozen=True)
class GroupedPreferenceSelect(PlanNode):
    """``sigma[P groupby A](...)`` (Definition 16)."""

    child: PlanNode
    pref: Preference
    by: tuple[str, ...]
    algorithm: Any = "bnl"
    #: >1 = groups hashed onto this many workers (no merge needed).
    partitions: int = 1

    def execute(self) -> Relation:
        if self.partitions > 1:
            from repro.engine.parallel import parallel_winnow_groupby

            return parallel_winnow_groupby(
                self.pref, self.by, self.child.execute(),
                algorithm=self.algorithm, partitions=self.partitions,
            )
        return winnow_groupby(
            self.pref, self.by, self.child.execute(), algorithm=self.algorithm
        )

    def lines(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        parallel = (
            f" partitions={self.partitions}" if self.partitions > 1 else ""
        )
        return [
            f"{pad}GroupedPreferenceSelect[{self.pref!r} groupby "
            f"{list(self.by)}] algorithm={_algorithm_label(self.algorithm)}"
            f"{parallel}",
            *self.child.lines(indent + 1),
        ]


@dataclass(frozen=True)
class Cascade(PlanNode):
    """A cascade of preference selections (Proposition 11).

    ``sigma[Pn](... sigma[P1](R))`` — valid because every stage but the
    last is a chain, so its survivors agree on the stage's attributes.
    """

    child: PlanNode
    stages: tuple[tuple[Preference, str], ...]  # (preference, algorithm)

    def execute(self) -> Relation:
        current = self.child.execute()
        for pref, algorithm in self.stages:
            current = winnow(pref, current, algorithm=algorithm)
        return current

    def lines(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        out = [f"{pad}Cascade[{len(self.stages)} stages]  (Proposition 11)"]
        for i, (pref, algorithm) in enumerate(self.stages, start=1):
            out.append(
                f"{pad}  stage {i}: {pref!r} "
                f"algorithm={_algorithm_label(algorithm)}"
            )
        out.extend(self.child.lines(indent + 1))
        return out


@dataclass(frozen=True)
class SortedWinnow(PlanNode):
    """``sigma[P](...)`` for a term proved a **weak order** on its input.

    Chomicki's semantic optimization (cs/0402003): when integrity
    constraints prove the preference is a weak order on every instance the
    input can be, the BMO set is exactly the first ORDER BY group — no
    dominance testing is needed.  Execution is a single argmax pass: rank
    every row by the term's score (or a chain's order-compatible key) and
    keep the rows achieving the best rank.  ``constraint`` records the
    proof's provenance and is printed by ``explain()``.
    """

    child: PlanNode
    pref: Preference
    #: Constraint provenance of the weak-order proof (shown in explain()).
    constraint: str = ""
    #: True when a key makes the first group provably a single tuple.
    singleton: bool = False

    def execute(self) -> Relation:
        from repro.query.algorithms import compatible_sort_key
        from repro.core.base_numerical import (
            HighestPreference,
            LowestPreference,
            score_function_of,
        )

        rel = self.child.execute()
        if len(rel) <= 1:
            return rel
        # Fast path: single-attribute HIGHEST/LOWEST argmax directly over
        # the cached column vector (builtin max/min, no per-row closures).
        pref = self.pref
        if isinstance(pref, (HighestPreference, LowestPreference)):
            attribute = pref.attributes[0]
            try:
                values = rel.columns()[attribute]
                best = (
                    max(values) if isinstance(pref, HighestPreference)
                    else min(values)
                )
            except (TypeError, KeyError):
                pass  # nulls / mixed types: fall through to the row scan
            else:
                return rel.take(
                    i for i, v in enumerate(values) if v == best
                )
        score = score_function_of(pref)
        if score is None:
            score = compatible_sort_key(pref)
        if score is None:  # unreachable for rule-built nodes; stay safe
            return winnow(pref, rel)
        rows = rel.rows()
        try:
            ranked = [score(row) for row in rows]
            best = max(ranked)
        except TypeError:
            return winnow(pref, rel)
        return rel.take(i for i, r in enumerate(ranked) if r == best)

    def lines(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        shape = "single best tuple" if self.singleton else "first sort group"
        out = [
            f"{pad}SortedWinnow[{self.pref!r}] (weak order: {shape})",
        ]
        if self.constraint:
            out.append(f"{pad}  constraint: {self.constraint}")
        out.extend(self.child.lines(indent + 1))
        return out


@dataclass(frozen=True)
class TopK(PlanNode):
    """k-best retrieval for SCORE / rank(F) preferences (Section 6.2)."""

    child: PlanNode
    pref: Preference
    k: int
    ties: str = "strict"
    #: >1 = per-partition local k-bests merged by one final k-best.
    partitions: int = 1

    def execute(self) -> Relation:
        if self.partitions > 1:
            from repro.engine.parallel import parallel_k_best

            return parallel_k_best(
                self.pref, self.child.execute(), self.k, ties=self.ties,
                partitions=self.partitions,
            )
        return k_best(self.pref, self.child.execute(), self.k, ties=self.ties)

    def lines(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        parallel = (
            f" partitions={self.partitions}" if self.partitions > 1 else ""
        )
        return [
            f"{pad}TopK[k={self.k}, ties={self.ties}, {self.pref!r}]"
            f"{parallel}",
            *self.child.lines(indent + 1),
        ]


@dataclass(frozen=True)
class ButOnly(PlanNode):
    """Quality supervision of a BMO result (the BUT ONLY clause)."""

    child: PlanNode
    pref: Preference
    conditions: tuple[QualityCondition, ...]

    def execute(self) -> Relation:
        return but_only(self.pref, self.child.execute(), self.conditions)

    def lines(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        conds = " AND ".join(str(c) for c in self.conditions)
        return [f"{pad}ButOnly[{conds}]", *self.child.lines(indent + 1)]


@dataclass(frozen=True)
class OrderBy(PlanNode):
    """Presentation ordering (the ORDER BY clause).

    Orthogonal to preference semantics: BMO decides *which* tuples survive,
    ORDER BY only arranges them for display.
    """

    child: PlanNode
    keys: tuple[tuple[str, bool], ...]  # (attribute, descending)

    def execute(self) -> Relation:
        out = self.child.execute()
        # Stable sorts compose right-to-left: apply minor keys first.
        for attribute, descending in reversed(self.keys):
            out = out.order_by([attribute], descending=descending)
        return out

    def lines(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        keys = ", ".join(
            f"{a} {'DESC' if d else 'ASC'}" for a, d in self.keys
        )
        return [f"{pad}OrderBy[{keys}]", *self.child.lines(indent + 1)]


@dataclass(frozen=True)
class Project(PlanNode):
    """Column projection (the SELECT list)."""

    child: PlanNode
    attributes: tuple[str, ...]

    def execute(self) -> Relation:
        return self.child.execute().project(self.attributes)

    def lines(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        return [
            f"{pad}Project[{', '.join(self.attributes)}]",
            *self.child.lines(indent + 1),
        ]


@dataclass(frozen=True)
class Limit(PlanNode):
    child: PlanNode
    k: int

    def execute(self) -> Relation:
        return self.child.execute().limit(self.k)

    def lines(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        return [f"{pad}Limit[{self.k}]", *self.child.lines(indent + 1)]


@dataclass(frozen=True)
class Plan:
    """A rooted plan plus optimizer provenance.

    ``rewrites`` records every term-level algebra law *and* plan-level
    rewrite rule that fired while planning, in application order, as
    ``(rule, before, after)`` triples.  ``explain()`` renders them twice:
    a compact ``rewrites: [rule, ...]`` summary line (deduplicated, in
    first-fired order) and the full per-step trace.
    """

    root: PlanNode
    rewrites: tuple[tuple[str, str, str], ...] = ()

    def execute(self) -> Relation:
        return self.root.execute()

    def rewrite_rules(self) -> tuple[str, ...]:
        """The distinct rewrite-rule names that fired, in first-fired order."""
        return tuple(dict.fromkeys(rule for rule, _, _ in self.rewrites))

    def explain(self) -> str:
        out = [self.root.explain()]
        if self.rewrites:
            out.append(f"rewrites: [{', '.join(self.rewrite_rules())}]")
            out.append("rewrites applied:")
            for rule, before, after in self.rewrites:
                out.append(f"  {rule}: {before}  ->  {after}")
        return "\n".join(out)
