"""Decomposition of preference queries (Sections 5.2-5.4, Propositions 8-12).

The paper decomposes complex preference queries into simpler ones — the
ground work for divide & conquer evaluation in a preference query optimizer:

* Prop. 8:  ``sigma[P1+P2](R)   = sigma[P1](R) /\\ sigma[P2](R)``
* Prop. 9:  ``sigma[P1<>P2](R)  = sigma[P1](R) \\/ sigma[P2](R) \\/ YY``
* Prop. 10: ``sigma[P1&P2](R)   = sigma[P1](R) /\\ sigma[P2 groupby A1](R)``
* Prop. 11: ``sigma[P1&P2](R)   = sigma[P2](sigma[P1](R))`` for chain P1
* Prop. 12: the Pareto master theorem combining 5, 9 and 10.

All evaluators work on relations (or dict-row lists) and return results with
*set* semantics on full tuples (the propositions are stated over sets); the
test-suite checks them against the naive BMO evaluation of the composite
preference on randomized inputs.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.constructors import (
    DisjointUnionPreference,
    IntersectionPreference,
    ParetoPreference,
    PrioritizedPreference,
)
from repro.core.preference import Preference, Row
from repro.query.algorithms import block_nested_loop
from repro.query.bmo import _repack, _unpack, winnow, winnow_groupby
from repro.relations.relation import Relation


def _row_key(row: Row) -> tuple:
    return tuple(sorted(row.items(), key=lambda kv: kv[0]))


def _set_intersect(a: list[Row], b: list[Row]) -> list[Row]:
    keys = {_row_key(r) for r in b}
    seen: set[tuple] = set()
    out = []
    for r in a:
        k = _row_key(r)
        if k in keys and k not in seen:
            seen.add(k)
            out.append(r)
    return out


def _set_union(*parts: list[Row]) -> list[Row]:
    seen: set[tuple] = set()
    out = []
    for part in parts:
        for r in part:
            k = _row_key(r)
            if k not in seen:
                seen.add(k)
                out.append(r)
    return out


# -- Definition 17 machinery -----------------------------------------------------

def nmax_projections(pref: Preference, rows: Sequence[Row]) -> set[tuple]:
    """``Nmax(P_R) = R[A] - max(P_R)`` as a set of projection tuples."""
    attrs = pref.attributes
    all_proj = {tuple(r[a] for a in attrs) for r in rows}
    best = block_nested_loop(pref, list(rows))
    max_proj = {tuple(r[a] for a in attrs) for r in best}
    return all_proj - max_proj


def better_than_in(
    pref: Preference, value_row: Row, rows: Sequence[Row]
) -> set[tuple]:
    """``P ^ v`` restricted to the database: ``{w in R[A] : v <_P w}``.

    Definition 17b's 'better-than set' — the up-set of ``v`` — intersected
    with ``R[A]``, which is the form the YY test needs (Example 11 computes
    these up-sets inside R).
    """
    attrs = pref.attributes
    out: set[tuple] = set()
    for row in rows:
        if pref._lt(value_row, row):
            out.add(tuple(row[a] for a in attrs))
    return out


def yy_set(
    p1: Preference, p2: Preference, data: Relation | Sequence[Row]
) -> Any:
    """``YY(P1, P2)_R`` (Definition 17c): the "hidden maxima" of P1 <> P2.

    Tuples non-maximal in *both* component database preferences whose
    better-than sets inside R do not intersect: nothing in R beats them in
    both components simultaneously, so they survive the conjunction.
    """
    rows, template = _unpack(data)
    nmax1 = nmax_projections(p1, rows)
    nmax2 = nmax_projections(p2, rows)
    a1, a2 = p1.attributes, p2.attributes
    # Up-sets may live on different attribute sets; emptiness of their
    # overlap is decided on the union attributes (Example 11 does exactly
    # this with P1&P2 and P2&P1 over the same single attribute).
    union_attrs = tuple(dict.fromkeys((*a1, *a2)))
    out: list[Row] = []
    seen: set[tuple] = set()
    for row in rows:
        k1 = tuple(row[a] for a in a1)
        k2 = tuple(row[a] for a in a2)
        if k1 not in nmax1 or k2 not in nmax2:
            continue
        up1_full = {
            tuple(r[a] for a in union_attrs) for r in rows if p1._lt(row, r)
        }
        up2_full = {
            tuple(r[a] for a in union_attrs) for r in rows if p2._lt(row, r)
        }
        if up1_full & up2_full:
            continue
        k = _row_key(row)
        if k not in seen:
            seen.add(k)
            out.append(row)
    return _repack(out, template)


# -- Propositions 8-12 -----------------------------------------------------------

def eval_union(
    p1: Preference, p2: Preference, data: Relation | Sequence[Row]
) -> Any:
    """Proposition 8: ``sigma[P1+P2](R) = sigma[P1](R) intersect sigma[P2](R)``."""
    rows, template = _unpack(data)
    r1 = winnow(p1, rows)
    r2 = winnow(p2, rows)
    return _repack(_set_intersect(r1, r2), template)


def eval_intersection(
    p1: Preference, p2: Preference, data: Relation | Sequence[Row]
) -> Any:
    """Proposition 9: ``sigma[P1<>P2](R) = sigma[P1](R) u sigma[P2](R) u YY``."""
    rows, template = _unpack(data)
    r1 = winnow(p1, rows)
    r2 = winnow(p2, rows)
    r3 = yy_set(p1, p2, rows)
    return _repack(_set_union(r1, r2, r3), template)


def eval_prioritized_grouping(
    p1: Preference, p2: Preference, data: Relation | Sequence[Row]
) -> Any:
    """Proposition 10 (plus the Prop. 4a degenerate case).

    For disjoint attribute sets:
    ``sigma[P1&P2](R) = sigma[P1](R) intersect sigma[P2 groupby A1](R)``;
    for identical attribute sets Prop. 4a collapses ``P1 & P2`` to ``P1``.
    """
    if p1.attribute_set == p2.attribute_set:
        return winnow(p1, data)
    shared = p1.attribute_set & p2.attribute_set
    if shared:
        raise ValueError(
            f"Proposition 10 needs disjoint attribute sets; shared: {sorted(shared)}"
        )
    rows, template = _unpack(data)
    r1 = winnow(p1, rows)
    r2 = winnow_groupby(p2, p1.attributes, rows)
    return _repack(_set_intersect(r1, r2), template)


def eval_prioritized_cascade(
    p1: Preference, p2: Preference, data: Relation | Sequence[Row]
) -> Any:
    """Proposition 11: ``sigma[P1&P2](R) = sigma[P2](sigma[P1](R))`` when
    ``P1`` is a chain (all survivors of P1 share one A1-value, so the
    grouping of Prop. 10 degenerates to a cascade)."""
    if p1.is_chain() is not True:
        raise ValueError(
            f"Proposition 11 requires a chain as the more important "
            f"preference; {p1!r} is not statically known to be one"
        )
    return winnow(p2, winnow(p1, data))


def eval_pareto_decomposition(
    p1: Preference, p2: Preference, data: Relation | Sequence[Row]
) -> Any:
    """Proposition 12, the Pareto master theorem::

        sigma[P1 (x) P2](R) = (sigma[P1](R) /\\ sigma[P2 groupby A1](R))
                            u (sigma[P2](R) /\\ sigma[P1 groupby A2](R))
                            u YY(P1&P2, P2&P1)_R

    The first two terms are the maxima of the two prioritized orders
    (Prop. 10); the third collects values maximal in neither but beaten in
    both simultaneously by nobody (the compromise reservoir).  Requires
    disjoint attribute sets, like Prop. 10 it builds on; for shared
    attributes use Prop. 6 and :func:`eval_intersection` instead.
    """
    rows, template = _unpack(data)
    term1 = eval_prioritized_grouping(p1, p2, rows)
    term2 = eval_prioritized_grouping(p2, p1, rows)
    term3 = yy_set(
        PrioritizedPreference((p1, p2)),
        PrioritizedPreference((p2, p1)),
        rows,
    )
    return _repack(_set_union(term1, term2, term3), template)


def eval_by_decomposition(pref: Preference, data: Relation | Sequence[Row]) -> Any:
    """Dispatch a binary compound preference to its decomposition theorem.

    The entry point benchmarks use to compare decomposed evaluation against
    the direct algorithms.
    """
    if isinstance(pref, DisjointUnionPreference) and len(pref.children) == 2:
        return eval_union(*pref.children, data)
    if isinstance(pref, IntersectionPreference) and len(pref.children) == 2:
        return eval_intersection(*pref.children, data)
    if isinstance(pref, PrioritizedPreference) and len(pref.children) == 2:
        p1, p2 = pref.children
        if p1.is_chain() is True:
            return eval_prioritized_cascade(p1, p2, data)
        return eval_prioritized_grouping(p1, p2, data)
    if isinstance(pref, ParetoPreference) and len(pref.children) == 2:
        p1, p2 = pref.children
        if p1.attribute_set == p2.attribute_set:
            return eval_intersection(p1, p2, data)  # Proposition 6
        return eval_pareto_decomposition(p1, p2, data)
    raise ValueError(
        f"no decomposition theorem applies to {pref!r} "
        "(need a binary +, <>, &, or (x) term)"
    )
