"""A heuristic preference query optimizer (the Section 7 roadmap item).

Given a preference term and a database set, the optimizer

1. simplifies the term with the algebra's rewrite rules (so e.g.
   ``P & P``, ``P (x) P^d`` or dual-of-dual never reach execution),
2. picks an evaluation strategy:

   * SCORE-representable terms -> one-pass :func:`sort_based_maxima`,
   * prioritized terms with chain heads -> a Proposition-11 cascade,
   * Pareto over injective chains -> vector skylines (2-d sweep for two
     dimensions, divide & conquer otherwise),
   * terms with a dominance-compatible sort key -> SFS,
   * everything else -> BNL (always correct),

3. chooses an execution *backend* for dominance-heavy winnows with a
   **statistics-driven cost model** (:func:`choose_backend` /
   :func:`estimate_cost`): per-column table statistics
   (:mod:`repro.relations.stats`) feed estimated kernel costs —
   cardinality x preference arity x expected skyline selectivity — and
   the cheapest of row, columnar, and *parallel-columnar* execution wins,
   partition count included (overridable per query via
   ``PreferenceQuery.backend``),

4. places hard selections below the preference operator and quality
   filters (BUT ONLY) above it, and top-k on top for ranked queries,

5. runs the algebraic *plan* rewriter (:mod:`repro.query.rewrite`):
   law-driven plan-to-plan transforms — rigid-selection pushdown below the
   winnow, Proposition-11 prioritization splitting into cascades, Pareto
   arm decomposition into composite skyline axes, constant-attribute
   pruning under equality selections, and trivial-winnow elimination.

``explain()`` on the resulting plan shows the chosen algorithms, the
backend (columnar nodes print ``backend=columnar kernel=...``), the
compact ``rewrites: [...]`` rule summary, and every algebra law and plan
rule that fired.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.algebra.rewriter import rewrite_trace, simplify
from repro.core.base_numerical import score_function_of
from repro.core.preference import Preference, Row
from repro.engine.backend import numpy_available
from repro.engine.columnar import columnar_axes, columnar_profile
from repro.engine.parallel import MIN_PARTITION_ROWS, cpu_count
from repro.query import rewrite as _rewrite
from repro.query.algorithms import compatible_sort_key, skyline_axes
from repro.query.plan import (
    ButOnly,
    ColumnarPreferenceSelect,
    GroupedPreferenceSelect,
    HardSelect,
    Limit,
    OrderBy,
    Plan,
    PlanNode,
    PreferenceSelect,
    Project,
    Scan,
    StorageScan,
    TopK,
)
from repro.query.quality import QualityCondition
from repro.relations.relation import Relation

#: Valid values of the ``backend`` planning hint.  ``"parallel"`` forces
#: the partition-and-merge executor (:mod:`repro.engine.parallel`);
#: ``"auto"`` picks it by cost when the machine has the cores to pay for
#: the dispatch.
BACKENDS = ("auto", "row", "columnar", "parallel")

# -- the cost model -----------------------------------------------------------------
#
# All costs are in abstract *comparison units*, calibrated against the
# benchmark suite: 1.0 ~ one interpreted per-row dominance step on the
# row engine.  Absolute values are meaningless; only ratios steer the
# choice, so the constants encode "a broadcasted integer comparison is
# ~64x cheaper than a pref._lt call", "rank-encoding a value costs a
# couple of comparisons", and so on.

ROW_SCAN_COST = 0.2       #: touch one attribute value in a linear row pass
ROW_COMPARE_COST = 1.0    #: one per-axis step of a pref._lt dominance test
ROW_SWEEP_COST = 1.0      #: one sort-key element in the row 2-d sweep
ENCODE_COST = 2.0         #: rank-encode one value into an integer code
VEC_COMPARE_COST = 1 / 64  #: one broadcasted int comparison (NumPy kernels)
VEC_SWEEP_COST = 1 / 32   #: one element of the vectorized 2-d sweep
FANOUT_COST = 0.05        #: np.isin membership test per input row
COLUMNAR_SETUP_COST = 20_000.0  #: fixed: axis extraction, unique, dispatch
PARTITION_OVERHEAD = 15_000.0   #: per-partition dispatch + merge bookkeeping


@dataclass(frozen=True)
class CostEstimate:
    """The cost model's working: estimated effort of each execution.

    ``selectivity`` is the expected skyline fraction of the distinct
    projections; ``parallel_cost`` is the cost at ``partitions`` workers
    (equal to ``columnar_cost`` when partitioning does not pay).
    ``stats_source`` records provenance — ``statistics(<relation>)`` when
    per-column statistics informed the estimate, ``cardinality-only``
    when only the row count was known.
    """

    cardinality: int
    arity: int
    distinct: int
    skyline: int
    selectivity: float
    row_cost: float
    columnar_cost: float
    parallel_cost: float
    partitions: int
    stats_source: str

    def describe(self) -> str:
        """One explain() line: every number the decision was made on."""
        parallel = (
            f"parallel[{self.partitions}]={self.parallel_cost:,.0f}"
            if self.partitions > 1
            else "parallel=n/a"
        )
        return (
            f"cost: row={self.row_cost:,.0f} "
            f"columnar={self.columnar_cost:,.0f} {parallel} units; "
            f"est. skyline {self.skyline}/{self.distinct} distinct "
            f"(selectivity {self.selectivity:.2%}); "
            f"stats={self.stats_source}"
        )


def _axis_attributes(pref: Preference) -> list[str]:
    """Flat attribute list over the term's skyline axes (composite arms
    contribute each stage attribute)."""
    axes = columnar_axes(pref) or []
    out: list[str] = []
    for attribute, _, _ in axes:
        if isinstance(attribute, tuple):
            out.extend(attribute)
        else:
            out.append(attribute)
    return out


def expected_skyline(distinct: int, arity: int) -> int:
    """E[skyline size] over ``distinct`` independent uniform vectors.

    The classic result for ``d`` independent dimensions:
    ``E ~ (ln n)^(d-1) / (d-1)!`` — exact for the sky-is-the-limit case
    the planner must hedge against, an overestimate for correlated data
    (which only makes the model conservative about parallelizing).
    """
    if distinct <= 1 or arity <= 1:
        return 1 if distinct else 0
    estimate = math.log(distinct) ** (arity - 1) / math.factorial(arity - 1)
    return max(1, min(distinct, round(estimate)))


def estimate_cost(
    pref: Preference,
    cardinality: int,
    stats: Any = None,
    cores: int | None = None,
    constraints: Any = None,
) -> CostEstimate:
    """Cost the row, columnar, and parallel-columnar evaluations of a
    dominance winnow over ``cardinality`` rows.

    ``stats`` is a :class:`repro.relations.stats.TableStats` (or None):
    per-axis distinct counts bound the number of distinct projections —
    the unit the dedup'ing columnar kernels actually sweep — so
    duplicate-heavy relations columnarize earlier and all-distinct ones
    honestly pay full freight.  ``cores`` caps the candidate partition
    count (default: the visible machine).  ``constraints`` (a
    :class:`repro.analysis.constraints.ConstraintSet`, or None) narrows
    the estimate further: an attribute proved constant contributes one
    distinct projection regardless of what the raw statistics say.
    """
    axes = columnar_axes(pref)
    arity = len(axes) if axes else max(1, len(pref.attributes))
    n = cardinality

    distinct = n
    stats_source = "cardinality-only"
    if stats is not None and axes:
        product = 1
        narrowed = False
        for attribute in _axis_attributes(pref):
            if constraints is not None and constraints.constant(attribute):
                narrowed = True
                continue  # a constant column adds no distinct projections
            product *= max(1, stats.distinct(attribute))
            if product >= n:
                product = n
                break
        distinct = max(1, min(n, product)) if n else 0
        stats_source = stats.source
        if narrowed:
            stats_source += "+constraints"
    skyline = expected_skyline(distinct, arity)
    selectivity = (skyline / distinct) if distinct else 0.0

    algorithm = choose_algorithm(pref)
    if algorithm == "sort":
        row_cost = ROW_SCAN_COST * n * arity
    elif algorithm == "2d":
        row_cost = ROW_SWEEP_COST * n * max(1.0, math.log2(n or 1))
    else:  # dc / sfs / bnl: pay a dominance phase over all rows
        row_cost = ROW_SCAN_COST * n * arity + ROW_COMPARE_COST * n * skyline

    encode = ENCODE_COST * n * arity
    if arity == 2:
        kernel = VEC_SWEEP_COST * distinct * max(1.0, math.log2(distinct or 1))
    else:
        kernel = VEC_COMPARE_COST * distinct * skyline * arity
    columnar_cost = COLUMNAR_SETUP_COST + encode + kernel + FANOUT_COST * n

    cores = cores if cores is not None else cpu_count()
    partitions = _best_partitions(kernel, distinct, cores)
    if partitions > 1:
        merge = VEC_COMPARE_COST * (partitions * skyline) ** 2 * arity
        parallel_cost = (
            columnar_cost
            - kernel
            + kernel / partitions
            + partitions * PARTITION_OVERHEAD
            + merge
        )
        if parallel_cost >= columnar_cost:
            partitions, parallel_cost = 1, columnar_cost
    else:
        parallel_cost = columnar_cost
    return CostEstimate(
        cardinality=n,
        arity=arity,
        distinct=distinct,
        skyline=skyline,
        selectivity=selectivity,
        row_cost=row_cost,
        columnar_cost=columnar_cost,
        parallel_cost=parallel_cost,
        partitions=partitions,
        stats_source=stats_source,
    )


def _best_partitions(kernel_cost: float, rows: int, cores: int) -> int:
    """The partition count minimizing ``kernel/P + P * overhead``.

    The unconstrained optimum is ``sqrt(kernel / overhead)``; it is then
    clamped to the core count and to partitions of at least
    :data:`~repro.engine.parallel.MIN_PARTITION_ROWS` rows, below which
    dispatch dominates.
    """
    if cores <= 1 or rows < 2 * MIN_PARTITION_ROWS or kernel_cost <= 0:
        return 1
    ideal = int(math.sqrt(kernel_cost / PARTITION_OVERHEAD))
    return max(1, min(ideal, cores, rows // MIN_PARTITION_ROWS))


def choose_algorithm(pref: Preference) -> str:
    """Pick the cheapest known-correct row algorithm for a preference term."""
    if score_function_of(pref) is not None:
        return "sort"
    axes = skyline_axes(pref)
    if axes is not None:
        return "2d" if len(axes) == 2 else "dc"
    if compatible_sort_key(pref) is not None:
        return "sfs"
    return "bnl"


@dataclass(frozen=True)
class BackendChoice:
    """The planner's backend decision plus its one-line rationale.

    ``partitions > 1`` means partition-and-merge parallel execution on
    the chosen (columnar) backend; ``cost`` carries the full
    :class:`CostEstimate` when the cost model ran (excluded from
    equality — two choices agreeing on backend/reason/partitions are the
    same decision).
    """

    backend: str  # "row" | "columnar"
    reason: str
    partitions: int = 1
    cost: CostEstimate | None = field(default=None, compare=False)

    @property
    def columnar(self) -> bool:
        return self.backend == "columnar"

    @property
    def parallel(self) -> bool:
        return self.partitions > 1


def choose_backend(
    pref: Preference,
    cardinality: int,
    hint: str = "auto",
    stats: Any = None,
    partitions: int | None = None,
    constraints: Any = None,
) -> BackendChoice:
    """Cost-rank row, columnar, and parallel-columnar execution of a winnow.

    The columnar engine applies to terms with a vector-skyline form (Pareto
    over injective chains, or a bare injective chain) and to
    SCORE-representable terms.  Under ``hint="auto"`` the decision is made
    by the **cost model** (:func:`estimate_cost`): estimated kernel cost —
    cardinality x preference arity x expected skyline selectivity, with
    per-column distinct counts from ``stats`` bounding the distinct
    projections — ranks the row engine against serial and partitioned
    columnar execution, and the cheapest wins.  SCORE terms stay on the
    already-linear row ``sort`` path, and without NumPy auto never
    columnarizes (the fallback kernels are correct but don't beat the row
    engine).

    ``hint="columnar"`` forces serial columnar execution (pure-Python
    kernels included) and raises ``ValueError`` for ineligible terms;
    ``hint="parallel"`` additionally forces partitioning (``partitions``
    workers, default the visible core count); ``hint="row"`` never
    columnarizes.
    """
    if hint not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {hint!r}")
    profile = columnar_profile(pref)
    if hint == "row":
        return BackendChoice("row", "backend=row requested")
    if hint in ("columnar", "parallel"):
        if profile is None:
            raise ValueError(
                f"{pref!r} has no columnar evaluation (needs a Pareto of "
                "injective chains or a SCORE-representable term); "
                f"drop the backend={hint!r} hint"
            )
        cost = (
            estimate_cost(pref, cardinality, stats, constraints=constraints)
            if profile == "skyline"
            else None
        )
        if hint == "columnar":
            return BackendChoice(
                "columnar", "backend=columnar requested", cost=cost
            )
        forced = partitions if partitions is not None else max(2, cpu_count())
        return BackendChoice(
            "columnar",
            f"backend=parallel requested ({forced} partitions)",
            partitions=max(1, forced),
            cost=cost,
        )
    if profile != "skyline":
        return BackendChoice("row", "no columnar dominance form")
    from repro.core.constructors import PrioritizedPreference

    if isinstance(pref, PrioritizedPreference):
        # A bare prioritization of chains has a columnar form (one
        # composite lexicographic axis) but a better row plan: split_prio
        # cascades it into linear argmax stages.  The composite axes earn
        # their keep as Pareto *arms*, where they unlock the vector
        # skyline for the whole term.
        return BackendChoice(
            "row", "chain prioritization cascades on the row engine"
        )
    estimate = estimate_cost(pref, cardinality, stats, constraints=constraints)
    if not numpy_available():
        return BackendChoice(
            "row",
            "NumPy unavailable (fallback kernels don't beat the row engine)",
            cost=estimate,
        )
    if estimate.row_cost <= min(estimate.columnar_cost, estimate.parallel_cost):
        return BackendChoice(
            "row",
            f"cost model: row {estimate.row_cost:,.0f} <= "
            f"columnar {estimate.columnar_cost:,.0f} units",
            cost=estimate,
        )
    if estimate.parallel_cost < estimate.columnar_cost:
        return BackendChoice(
            "columnar",
            f"cost model: parallel[{estimate.partitions}] "
            f"{estimate.parallel_cost:,.0f} < columnar "
            f"{estimate.columnar_cost:,.0f} < row "
            f"{estimate.row_cost:,.0f} units",
            partitions=estimate.partitions,
            cost=estimate,
        )
    return BackendChoice(
        "columnar",
        f"cost model: columnar {estimate.columnar_cost:,.0f} < "
        f"row {estimate.row_cost:,.0f} units",
        cost=estimate,
    )


def _conjuncts(
    hard: Callable[[Row], bool] | None,
    hard_label: str,
    wheres: Sequence[Any] | None,
) -> list[tuple[Callable[[Row], bool], str, Any]]:
    """Normalize the two hard-selection inputs into (predicate, label, ast).

    ``hard`` is the legacy single opaque callable; ``wheres`` carries
    structured per-conjunct specs (anything with ``predicate`` / ``label``
    / ``ast`` attributes, e.g. :class:`repro.query.api.WhereSpec`) whose
    AST provenance feeds the rewrite engine's rigidity and
    constant-propagation analyses.
    """
    out: list[tuple[Callable[[Row], bool], str, Any]] = []
    if hard is not None:
        out.append((hard, hard_label, None))
    for spec in wheres or ():
        out.append((spec.predicate, spec.label, getattr(spec, "ast", None)))
    return out


def plan(
    pref: Preference | None,
    relation: Relation,
    hard: Callable[[Row], bool] | None = None,
    hard_label: str = "<predicate>",
    wheres: Sequence[Any] | None = None,
    groupby: Sequence[str] | None = None,
    top_k: int | None = None,
    top_ties: str = "strict",
    but_only: Sequence[QualityCondition] | None = None,
    select: Sequence[str] | None = None,
    order_by: Sequence[tuple[str, bool]] | None = None,
    limit: int | None = None,
    use_rewriter: bool = True,
    algorithm: Any | None = None,
    backend: str = "auto",
    partitions: int | None = None,
    storage: Any = None,
    source_name: str | None = None,
) -> Plan:
    """Build an execution plan for ``sigma[P](sigma_hard(R))`` and friends.

    ``pref=None`` plans a plain exact-match query (hard selection, ordering,
    projection, limit only).  ``algorithm`` forces one evaluation engine —
    a name from :data:`repro.query.algorithms.ALGORITHMS` or a callable —
    bypassing both automatic selection and cascade splitting.  ``backend``
    ("auto" / "row" / "columnar" / "parallel") steers the winnow between
    the row engine, the columnar engine, and partition-and-merge parallel
    execution (see :func:`choose_backend`; ``partitions`` fixes the worker
    count for the "parallel" hint); it cannot be combined with a forced
    ``algorithm``, which already names an engine.

    With ``use_rewriter=True`` (the default) the plan is rewritten by
    :func:`repro.query.rewrite.rewrite_plan`: WHERE conjuncts proven rigid
    w.r.t. the preference are emitted in their canonical outer position and
    pushed below the winnow by the ``push_select_below_winnow`` rule,
    prioritizations split into cascades, and so on — every step lands in
    :attr:`Plan.rewrites`.  ``use_rewriter=False`` plans the canonical
    (unrewritten) form: equivalent results, none of the speedups.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if algorithm is not None and backend != "auto":
        raise ValueError(
            "algorithm= already forces an engine; drop the backend= hint "
            "(the columnar kernels are algorithms 'vsfs' and 'vbnl')"
        )
    if partitions is not None:
        if backend != "parallel":
            raise ValueError(
                "partitions= only applies to backend='parallel' "
                f"(got backend={backend!r})"
            )
        if partitions < 1:
            raise ValueError(f"partitions must be positive, got {partitions}")
    conjuncts = _conjuncts(hard, hard_label, wheres)
    node: PlanNode = Scan(relation)

    if pref is None:
        for clause, value in (
            ("groupby", groupby), ("top_k", top_k), ("but_only", but_only)
        ):
            if value:
                raise ValueError(
                    f"{clause} requires a preference term, but none was given"
                )
        for predicate, label, ast in conjuncts:
            node = HardSelect(node, predicate, label, ast)
        if order_by:
            node = OrderBy(node, tuple(order_by))
        if select:
            node = Project(node, tuple(select))
        if limit is not None:
            node = Limit(node, limit)
        return Plan(node)

    # Storage pushdown: when the source relation is mirrored in a SQL
    # storage backend (storage= is the session backend, source_name the
    # catalog name), the leaf becomes a StorageScan pinned to the
    # mirror's catalog version; the push_select_into_storage rule can
    # then absorb rigid conjuncts into an indexed SQL prefilter.  The
    # scan is a pure fast path: on any version drift it re-evaluates the
    # conjuncts in Python over the same immutable snapshot.
    storage_version: int | None = None
    if (use_rewriter and storage is not None and source_name
            and getattr(storage, "supports_pushdown", False)):
        storage_version = storage.table_version(source_name)
        if storage_version is not None:
            node = StorageScan(relation=relation, table=source_name.lower(),
                               backend=storage, version=storage_version)

    # BUT ONLY quality conditions address base preferences *inside the
    # user's term* (DISTANCE(price) names the AROUND the user wrote);
    # simplification may legally drop such bases (e.g. a covered
    # prioritization stage), so quality supervision keeps the original.
    original_pref = pref
    rewrites: list[tuple[str, str, str]] = []
    if use_rewriter:
        rewrites.extend(rewrite_trace(pref))
        pref = simplify(pref)

    # Rigid conjuncts commute with the winnow (both positions are
    # equivalent), so the builder emits them in canonical outer position
    # and lets the push_select_below_winnow rule place them on the cheap
    # side; everything else is pinned below by WHERE-before-PREFERRING
    # semantics.  Only the maximal rigid *suffix* is lifted: the pushed
    # conjuncts land back directly below the winnow, above the pinned
    # ones, so suffix-lifting preserves the user's conjunct evaluation
    # order exactly — an opaque predicate guarded by an earlier conjunct
    # (where(a__ne=0).where(lambda r: 1 / r["a"] > 0)) stays guarded.
    # Ranked (top-k) and grouped winnows keep every conjunct below — the
    # commutation law is about plain winnows.
    lifted: list[tuple[Callable[[Row], bool], str, Any]] = []
    below = list(conjuncts)
    if use_rewriter and top_k is None and not groupby:
        while below and below[-1][2] is not None and _rewrite.is_rigid(
            below[-1][2], pref
        ):
            lifted.insert(0, below.pop())
    for predicate, label, ast in below:
        node = HardSelect(node, predicate, label, ast)

    stats = relation.stats() if pref is not None else None
    # The cost model normally sizes the winnow input as the full scan;
    # with a mirrored relation the backend can *count* the prefiltered
    # candidate set instead, so backend/partition choices reflect what
    # the kernels will actually see.
    cardinality = len(relation)
    if storage_version is not None and storage is not None and source_name:
        from repro.storage.pushdown import pushable_where

        pushable = tuple(
            conjunct_ast for _, _, conjunct_ast in conjuncts
            if conjunct_ast is not None
            and pushable_where(conjunct_ast, relation.schema)
        )
        if pushable:
            reported = storage.cardinality(
                source_name, pushable, storage_version
            )
            if reported is not None:
                cardinality = reported
    # The constraint registry (declared schema constraints + facts derived
    # from statistics over the preference's attributes) powers the semantic
    # rewrite rules and narrows the cost model's selectivity estimates.
    # The canonical (use_rewriter=False) plan stays constraint-blind.
    constraints = None
    if use_rewriter:
        from repro.analysis.constraints import constraint_registry

        # Profile the preference's attributes plus any WHERE pins to a
        # constant: a key on an equality-fixed column proves the winnow
        # input is a single tuple (remove_redundant_winnow).
        profiled = set(pref.attribute_set)
        for _, _, conjunct_ast in conjuncts:
            if conjunct_ast is not None:
                profiled |= _rewrite.fixed_attributes(conjunct_ast)
        constraints = constraint_registry(relation, sorted(profiled))
    requested_partitions = (
        max(1, partitions if partitions is not None else cpu_count())
        if backend == "parallel"
        else 1
    )
    if top_k is not None:
        if backend == "columnar":
            raise ValueError(
                "top-k is ranked by scores, not dominance; the columnar "
                "backend does not apply (drop the backend='columnar' hint)"
            )
        # Ranked retrieval is score-and-sort — linear, and trivially
        # partitionable (local k-bests merge by one more k-best): the
        # "parallel" hint partitions it, auto leaves it serial.
        node = TopK(node, pref, top_k, ties=top_ties,
                    partitions=requested_partitions)
    elif groupby:
        group_algorithm = algorithm
        if group_algorithm is None:
            if backend == "columnar":
                # Eligibility check only; per-group sizes are unknown, so an
                # explicit hint is the one way groups go columnar.
                choose_backend(pref, len(relation), backend, stats=stats)
                group_algorithm = "vsfs"
            else:
                group_algorithm = choose_algorithm(pref)
        # Grouped winnows partition by group hash (no merge needed) under
        # the "parallel" hint; per-group sizes are unknown to the cost
        # model, so auto stays serial here too.
        node = GroupedPreferenceSelect(
            node, pref, tuple(groupby), algorithm=group_algorithm,
            partitions=requested_partitions,
        )
    elif algorithm is not None:
        node = PreferenceSelect(node, pref, algorithm=algorithm)
    else:
        choice = choose_backend(
            pref, cardinality, backend, stats=stats, partitions=partitions,
            constraints=constraints,
        )
        if choice.columnar:
            node = ColumnarPreferenceSelect(
                node, pref, partitions=choice.partitions, cost=choice,
            )
        else:
            node = PreferenceSelect(
                node, pref, algorithm=choose_algorithm(pref), cost=choice
            )
    for predicate, label, ast in lifted:
        node = HardSelect(node, predicate, label, ast)

    if but_only:
        node = ButOnly(node, original_pref, tuple(but_only))
    if order_by:
        node = OrderBy(node, tuple(order_by))
    if select:
        node = Project(node, tuple(select))
    if limit is not None:
        node = Limit(node, limit)

    if use_rewriter:
        ctx = _rewrite.RewriteContext(
            forced_algorithm=algorithm,
            backend=backend,
            cardinality=cardinality,
            stats=stats,
            partitions=partitions,
            constraints=constraints,
        )
        node, plan_steps = _rewrite.rewrite_plan(node, ctx)
        rewrites.extend(plan_steps)
    return Plan(node, tuple(rewrites))


def execute(
    pref: Preference,
    relation: Relation,
    **kwargs: Any,
) -> Relation:
    """Plan and run in one step — the convenience entry point."""
    return plan(pref, relation, **kwargs).execute()


def explain(
    pref: Preference,
    relation: Relation,
    **kwargs: Any,
) -> str:
    """The plan text (operators, algorithms, fired laws) without running it."""
    return plan(pref, relation, **kwargs).explain()
