"""A heuristic preference query optimizer (the Section 7 roadmap item).

Given a preference term and a database set, the optimizer

1. simplifies the term with the algebra's rewrite rules (so e.g.
   ``P & P``, ``P (x) P^d`` or dual-of-dual never reach execution),
2. picks an evaluation strategy:

   * SCORE-representable terms -> one-pass :func:`sort_based_maxima`,
   * prioritized terms with chain heads -> a Proposition-11 cascade,
   * Pareto over injective chains -> vector skylines (2-d sweep for two
     dimensions, divide & conquer otherwise),
   * terms with a dominance-compatible sort key -> SFS,
   * everything else -> BNL (always correct),

3. chooses an execution *backend* for dominance-heavy winnows: the row
   engine by default, the columnar engine (:mod:`repro.engine`) for large
   Pareto-of-chains inputs where block-vectorized evaluation wins
   (:func:`choose_backend`; overridable per query via
   ``PreferenceQuery.backend``),

4. places hard selections below the preference operator and quality
   filters (BUT ONLY) above it, and top-k on top for ranked queries.

``explain()`` on the resulting plan shows the chosen algorithms, the
backend (columnar nodes print ``backend=columnar kernel=...``), and every
algebra law that fired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.algebra.rewriter import rewrite_trace, simplify
from repro.core.base_numerical import score_function_of
from repro.core.constructors import PrioritizedPreference
from repro.core.preference import Preference, Row
from repro.engine.backend import numpy_available
from repro.engine.columnar import columnar_profile
from repro.query.algorithms import compatible_sort_key, skyline_axes
from repro.query.plan import (
    ButOnly,
    Cascade,
    ColumnarPreferenceSelect,
    GroupedPreferenceSelect,
    HardSelect,
    Limit,
    OrderBy,
    Plan,
    PlanNode,
    PreferenceSelect,
    Project,
    Scan,
    TopK,
)
from repro.query.quality import QualityCondition
from repro.relations.relation import Relation

#: Minimum input cardinality before the auto-chosen columnar backend pays
#: for its setup (dedup, axis extraction, rank encoding).  Below this the
#: row engine's vector algorithms (2d/dc) are at least as fast.
COLUMNAR_ROW_THRESHOLD = 512

#: Valid values of the ``backend`` planning hint.
BACKENDS = ("auto", "row", "columnar")


def choose_algorithm(pref: Preference) -> str:
    """Pick the cheapest known-correct row algorithm for a preference term."""
    if score_function_of(pref) is not None:
        return "sort"
    axes = skyline_axes(pref)
    if axes is not None:
        return "2d" if len(axes) == 2 else "dc"
    if compatible_sort_key(pref) is not None:
        return "sfs"
    return "bnl"


@dataclass(frozen=True)
class BackendChoice:
    """The planner's backend decision plus its one-line rationale."""

    backend: str  # "row" | "columnar"
    reason: str

    @property
    def columnar(self) -> bool:
        return self.backend == "columnar"


def choose_backend(
    pref: Preference, cardinality: int, hint: str = "auto"
) -> BackendChoice:
    """Cost-rank the row engine against the columnar engine for a winnow.

    The columnar engine applies to terms with a vector-skyline form (Pareto
    over injective chains, or a bare injective chain) and to
    SCORE-representable terms.  Under ``hint="auto"`` it is chosen only for
    the skyline case — where the row engine is super-linear — and only when
    the input is large enough (:data:`COLUMNAR_ROW_THRESHOLD`) and NumPy is
    present; SCORE terms stay on the already-linear row ``sort`` path.
    ``hint="columnar"`` forces it (pure-Python kernels included) and raises
    ``ValueError`` for ineligible terms; ``hint="row"`` never columnarizes.
    """
    if hint not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {hint!r}")
    profile = columnar_profile(pref)
    if hint == "row":
        return BackendChoice("row", "backend=row requested")
    if hint == "columnar":
        if profile is None:
            raise ValueError(
                f"{pref!r} has no columnar evaluation (needs a Pareto of "
                "injective chains or a SCORE-representable term); "
                "drop the backend='columnar' hint"
            )
        return BackendChoice("columnar", "backend=columnar requested")
    if profile != "skyline":
        return BackendChoice("row", "no columnar dominance form")
    if cardinality < COLUMNAR_ROW_THRESHOLD:
        return BackendChoice(
            "row", f"input below columnar threshold ({cardinality} rows)"
        )
    if not numpy_available():
        return BackendChoice("row", "NumPy unavailable")
    return BackendChoice(
        "columnar", f"vector skyline over {cardinality} rows"
    )


def _cascade_stages(
    pref: Preference,
) -> tuple[tuple[Preference, str], ...] | None:
    """Split ``P1 & ... & Pn`` into Proposition-11 cascade stages.

    Every stage except the last must be a (statically known) chain; the
    remaining suffix becomes one final stage.  Returns None when the head
    is not a chain (no cascade advantage).
    """
    if not isinstance(pref, PrioritizedPreference):
        return None
    children = list(pref.children)
    stages: list[tuple[Preference, str]] = []
    while len(children) > 1 and children[0].is_chain() is True:
        head = children.pop(0)
        stages.append((head, choose_algorithm(head)))
    if not stages:
        return None
    rest: Preference
    rest = children[0] if len(children) == 1 else PrioritizedPreference(tuple(children))
    stages.append((rest, choose_algorithm(rest)))
    return tuple(stages)


def plan(
    pref: Preference | None,
    relation: Relation,
    hard: Callable[[Row], bool] | None = None,
    hard_label: str = "<predicate>",
    groupby: Sequence[str] | None = None,
    top_k: int | None = None,
    top_ties: str = "strict",
    but_only: Sequence[QualityCondition] | None = None,
    select: Sequence[str] | None = None,
    order_by: Sequence[tuple[str, bool]] | None = None,
    limit: int | None = None,
    use_rewriter: bool = True,
    algorithm: Any | None = None,
    backend: str = "auto",
) -> Plan:
    """Build an execution plan for ``sigma[P](sigma_hard(R))`` and friends.

    ``pref=None`` plans a plain exact-match query (hard selection, ordering,
    projection, limit only).  ``algorithm`` forces one evaluation engine —
    a name from :data:`repro.query.algorithms.ALGORITHMS` or a callable —
    bypassing both automatic selection and cascade splitting.  ``backend``
    ("auto" / "row" / "columnar") steers the winnow between the row engine
    and the columnar engine (see :func:`choose_backend`); it cannot be
    combined with a forced ``algorithm``, which already names an engine.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if algorithm is not None and backend != "auto":
        raise ValueError(
            "algorithm= already forces an engine; drop the backend= hint "
            "(the columnar kernels are algorithms 'vsfs' and 'vbnl')"
        )
    node: PlanNode = Scan(relation)
    if hard is not None:
        node = HardSelect(node, hard, label=hard_label)

    if pref is None:
        for clause, value in (
            ("groupby", groupby), ("top_k", top_k), ("but_only", but_only)
        ):
            if value:
                raise ValueError(
                    f"{clause} requires a preference term, but none was given"
                )
        if order_by:
            node = OrderBy(node, tuple(order_by))
        if select:
            node = Project(node, tuple(select))
        if limit is not None:
            node = Limit(node, limit)
        return Plan(node)

    rewrites: tuple[tuple[str, str, str], ...] = ()
    if use_rewriter:
        rewrites = tuple(rewrite_trace(pref))
        pref = simplify(pref)

    if top_k is not None:
        if backend == "columnar":
            raise ValueError(
                "top-k is ranked by scores, not dominance; the columnar "
                "backend does not apply (drop the backend='columnar' hint)"
            )
        node = TopK(node, pref, top_k, ties=top_ties)
    elif groupby:
        group_algorithm = algorithm
        if group_algorithm is None:
            if backend == "columnar":
                # Eligibility check only; per-group sizes are unknown, so an
                # explicit hint is the one way groups go columnar.
                choose_backend(pref, len(relation), backend)
                group_algorithm = "vsfs"
            else:
                group_algorithm = choose_algorithm(pref)
        node = GroupedPreferenceSelect(
            node, pref, tuple(groupby), algorithm=group_algorithm
        )
    elif algorithm is not None:
        node = PreferenceSelect(node, pref, algorithm=algorithm)
    else:
        choice = choose_backend(pref, len(relation), backend)
        if choice.columnar:
            node = ColumnarPreferenceSelect(node, pref)
        else:
            stages = _cascade_stages(pref)
            if stages is not None:
                node = Cascade(node, stages)
            else:
                node = PreferenceSelect(
                    node, pref, algorithm=choose_algorithm(pref)
                )

    if but_only:
        node = ButOnly(node, pref, tuple(but_only))
    if order_by:
        node = OrderBy(node, tuple(order_by))
    if select:
        node = Project(node, tuple(select))
    if limit is not None:
        node = Limit(node, limit)
    return Plan(node, rewrites)


def execute(
    pref: Preference,
    relation: Relation,
    **kwargs: Any,
) -> Relation:
    """Plan and run in one step — the convenience entry point."""
    return plan(pref, relation, **kwargs).execute()


def explain(
    pref: Preference,
    relation: Relation,
    **kwargs: Any,
) -> str:
    """The plan text (operators, algorithms, fired laws) without running it."""
    return plan(pref, relation, **kwargs).explain()
