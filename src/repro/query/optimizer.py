"""A heuristic preference query optimizer (the Section 7 roadmap item).

Given a preference term and a database set, the optimizer

1. simplifies the term with the algebra's rewrite rules (so e.g.
   ``P & P``, ``P (x) P^d`` or dual-of-dual never reach execution),
2. picks an evaluation strategy:

   * SCORE-representable terms -> one-pass :func:`sort_based_maxima`,
   * prioritized terms with chain heads -> a Proposition-11 cascade,
   * Pareto over injective chains -> vector skylines (2-d sweep for two
     dimensions, divide & conquer otherwise),
   * terms with a dominance-compatible sort key -> SFS,
   * everything else -> BNL (always correct),

3. chooses an execution *backend* for dominance-heavy winnows: the row
   engine by default, the columnar engine (:mod:`repro.engine`) for large
   Pareto-of-chains inputs where block-vectorized evaluation wins
   (:func:`choose_backend`; overridable per query via
   ``PreferenceQuery.backend``),

4. places hard selections below the preference operator and quality
   filters (BUT ONLY) above it, and top-k on top for ranked queries,

5. runs the algebraic *plan* rewriter (:mod:`repro.query.rewrite`):
   law-driven plan-to-plan transforms — rigid-selection pushdown below the
   winnow, Proposition-11 prioritization splitting into cascades, Pareto
   arm decomposition into composite skyline axes, constant-attribute
   pruning under equality selections, and trivial-winnow elimination.

``explain()`` on the resulting plan shows the chosen algorithms, the
backend (columnar nodes print ``backend=columnar kernel=...``), the
compact ``rewrites: [...]`` rule summary, and every algebra law and plan
rule that fired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.algebra.rewriter import rewrite_trace, simplify
from repro.core.base_numerical import score_function_of
from repro.core.preference import Preference, Row
from repro.engine.backend import numpy_available
from repro.engine.columnar import columnar_profile
from repro.query import rewrite as _rewrite
from repro.query.algorithms import compatible_sort_key, skyline_axes
from repro.query.plan import (
    ButOnly,
    ColumnarPreferenceSelect,
    GroupedPreferenceSelect,
    HardSelect,
    Limit,
    OrderBy,
    Plan,
    PlanNode,
    PreferenceSelect,
    Project,
    Scan,
    TopK,
)
from repro.query.quality import QualityCondition
from repro.relations.relation import Relation

#: Minimum input cardinality before the auto-chosen columnar backend pays
#: for its setup (dedup, axis extraction, rank encoding).  Below this the
#: row engine's vector algorithms (2d/dc) are at least as fast.
COLUMNAR_ROW_THRESHOLD = 512

#: Valid values of the ``backend`` planning hint.
BACKENDS = ("auto", "row", "columnar")


def choose_algorithm(pref: Preference) -> str:
    """Pick the cheapest known-correct row algorithm for a preference term."""
    if score_function_of(pref) is not None:
        return "sort"
    axes = skyline_axes(pref)
    if axes is not None:
        return "2d" if len(axes) == 2 else "dc"
    if compatible_sort_key(pref) is not None:
        return "sfs"
    return "bnl"


@dataclass(frozen=True)
class BackendChoice:
    """The planner's backend decision plus its one-line rationale."""

    backend: str  # "row" | "columnar"
    reason: str

    @property
    def columnar(self) -> bool:
        return self.backend == "columnar"


def choose_backend(
    pref: Preference, cardinality: int, hint: str = "auto"
) -> BackendChoice:
    """Cost-rank the row engine against the columnar engine for a winnow.

    The columnar engine applies to terms with a vector-skyline form (Pareto
    over injective chains, or a bare injective chain) and to
    SCORE-representable terms.  Under ``hint="auto"`` it is chosen only for
    the skyline case — where the row engine is super-linear — and only when
    the input is large enough (:data:`COLUMNAR_ROW_THRESHOLD`) and NumPy is
    present; SCORE terms stay on the already-linear row ``sort`` path.
    ``hint="columnar"`` forces it (pure-Python kernels included) and raises
    ``ValueError`` for ineligible terms; ``hint="row"`` never columnarizes.
    """
    if hint not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {hint!r}")
    profile = columnar_profile(pref)
    if hint == "row":
        return BackendChoice("row", "backend=row requested")
    if hint == "columnar":
        if profile is None:
            raise ValueError(
                f"{pref!r} has no columnar evaluation (needs a Pareto of "
                "injective chains or a SCORE-representable term); "
                "drop the backend='columnar' hint"
            )
        return BackendChoice("columnar", "backend=columnar requested")
    if profile != "skyline":
        return BackendChoice("row", "no columnar dominance form")
    from repro.core.constructors import PrioritizedPreference

    if isinstance(pref, PrioritizedPreference):
        # A bare prioritization of chains has a columnar form (one
        # composite lexicographic axis) but a better row plan: split_prio
        # cascades it into linear argmax stages.  The composite axes earn
        # their keep as Pareto *arms*, where they unlock the vector
        # skyline for the whole term.
        return BackendChoice(
            "row", "chain prioritization cascades on the row engine"
        )
    if cardinality < COLUMNAR_ROW_THRESHOLD:
        return BackendChoice(
            "row", f"input below columnar threshold ({cardinality} rows)"
        )
    if not numpy_available():
        return BackendChoice("row", "NumPy unavailable")
    return BackendChoice(
        "columnar", f"vector skyline over {cardinality} rows"
    )


def _conjuncts(
    hard: Callable[[Row], bool] | None,
    hard_label: str,
    wheres: Sequence[Any] | None,
) -> list[tuple[Callable[[Row], bool], str, Any]]:
    """Normalize the two hard-selection inputs into (predicate, label, ast).

    ``hard`` is the legacy single opaque callable; ``wheres`` carries
    structured per-conjunct specs (anything with ``predicate`` / ``label``
    / ``ast`` attributes, e.g. :class:`repro.query.api.WhereSpec`) whose
    AST provenance feeds the rewrite engine's rigidity and
    constant-propagation analyses.
    """
    out: list[tuple[Callable[[Row], bool], str, Any]] = []
    if hard is not None:
        out.append((hard, hard_label, None))
    for spec in wheres or ():
        out.append((spec.predicate, spec.label, getattr(spec, "ast", None)))
    return out


def plan(
    pref: Preference | None,
    relation: Relation,
    hard: Callable[[Row], bool] | None = None,
    hard_label: str = "<predicate>",
    wheres: Sequence[Any] | None = None,
    groupby: Sequence[str] | None = None,
    top_k: int | None = None,
    top_ties: str = "strict",
    but_only: Sequence[QualityCondition] | None = None,
    select: Sequence[str] | None = None,
    order_by: Sequence[tuple[str, bool]] | None = None,
    limit: int | None = None,
    use_rewriter: bool = True,
    algorithm: Any | None = None,
    backend: str = "auto",
) -> Plan:
    """Build an execution plan for ``sigma[P](sigma_hard(R))`` and friends.

    ``pref=None`` plans a plain exact-match query (hard selection, ordering,
    projection, limit only).  ``algorithm`` forces one evaluation engine —
    a name from :data:`repro.query.algorithms.ALGORITHMS` or a callable —
    bypassing both automatic selection and cascade splitting.  ``backend``
    ("auto" / "row" / "columnar") steers the winnow between the row engine
    and the columnar engine (see :func:`choose_backend`); it cannot be
    combined with a forced ``algorithm``, which already names an engine.

    With ``use_rewriter=True`` (the default) the plan is rewritten by
    :func:`repro.query.rewrite.rewrite_plan`: WHERE conjuncts proven rigid
    w.r.t. the preference are emitted in their canonical outer position and
    pushed below the winnow by the ``push_select_below_winnow`` rule,
    prioritizations split into cascades, and so on — every step lands in
    :attr:`Plan.rewrites`.  ``use_rewriter=False`` plans the canonical
    (unrewritten) form: equivalent results, none of the speedups.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if algorithm is not None and backend != "auto":
        raise ValueError(
            "algorithm= already forces an engine; drop the backend= hint "
            "(the columnar kernels are algorithms 'vsfs' and 'vbnl')"
        )
    conjuncts = _conjuncts(hard, hard_label, wheres)
    node: PlanNode = Scan(relation)

    if pref is None:
        for clause, value in (
            ("groupby", groupby), ("top_k", top_k), ("but_only", but_only)
        ):
            if value:
                raise ValueError(
                    f"{clause} requires a preference term, but none was given"
                )
        for predicate, label, ast in conjuncts:
            node = HardSelect(node, predicate, label, ast)
        if order_by:
            node = OrderBy(node, tuple(order_by))
        if select:
            node = Project(node, tuple(select))
        if limit is not None:
            node = Limit(node, limit)
        return Plan(node)

    # BUT ONLY quality conditions address base preferences *inside the
    # user's term* (DISTANCE(price) names the AROUND the user wrote);
    # simplification may legally drop such bases (e.g. a covered
    # prioritization stage), so quality supervision keeps the original.
    original_pref = pref
    rewrites: list[tuple[str, str, str]] = []
    if use_rewriter:
        rewrites.extend(rewrite_trace(pref))
        pref = simplify(pref)

    # Rigid conjuncts commute with the winnow (both positions are
    # equivalent), so the builder emits them in canonical outer position
    # and lets the push_select_below_winnow rule place them on the cheap
    # side; everything else is pinned below by WHERE-before-PREFERRING
    # semantics.  Only the maximal rigid *suffix* is lifted: the pushed
    # conjuncts land back directly below the winnow, above the pinned
    # ones, so suffix-lifting preserves the user's conjunct evaluation
    # order exactly — an opaque predicate guarded by an earlier conjunct
    # (where(a__ne=0).where(lambda r: 1 / r["a"] > 0)) stays guarded.
    # Ranked (top-k) and grouped winnows keep every conjunct below — the
    # commutation law is about plain winnows.
    lifted: list[tuple[Callable[[Row], bool], str, Any]] = []
    below = list(conjuncts)
    if use_rewriter and top_k is None and not groupby:
        while below and below[-1][2] is not None and _rewrite.is_rigid(
            below[-1][2], pref
        ):
            lifted.insert(0, below.pop())
    for predicate, label, ast in below:
        node = HardSelect(node, predicate, label, ast)

    if top_k is not None:
        if backend == "columnar":
            raise ValueError(
                "top-k is ranked by scores, not dominance; the columnar "
                "backend does not apply (drop the backend='columnar' hint)"
            )
        node = TopK(node, pref, top_k, ties=top_ties)
    elif groupby:
        group_algorithm = algorithm
        if group_algorithm is None:
            if backend == "columnar":
                # Eligibility check only; per-group sizes are unknown, so an
                # explicit hint is the one way groups go columnar.
                choose_backend(pref, len(relation), backend)
                group_algorithm = "vsfs"
            else:
                group_algorithm = choose_algorithm(pref)
        node = GroupedPreferenceSelect(
            node, pref, tuple(groupby), algorithm=group_algorithm
        )
    elif algorithm is not None:
        node = PreferenceSelect(node, pref, algorithm=algorithm)
    else:
        choice = choose_backend(pref, len(relation), backend)
        if choice.columnar:
            node = ColumnarPreferenceSelect(node, pref)
        else:
            node = PreferenceSelect(node, pref, algorithm=choose_algorithm(pref))
    for predicate, label, ast in lifted:
        node = HardSelect(node, predicate, label, ast)

    if but_only:
        node = ButOnly(node, original_pref, tuple(but_only))
    if order_by:
        node = OrderBy(node, tuple(order_by))
    if select:
        node = Project(node, tuple(select))
    if limit is not None:
        node = Limit(node, limit)

    if use_rewriter:
        ctx = _rewrite.RewriteContext(
            forced_algorithm=algorithm,
            backend=backend,
            cardinality=len(relation),
        )
        node, plan_steps = _rewrite.rewrite_plan(node, ctx)
        rewrites.extend(plan_steps)
    return Plan(node, tuple(rewrites))


def execute(
    pref: Preference,
    relation: Relation,
    **kwargs: Any,
) -> Relation:
    """Plan and run in one step — the convenience entry point."""
    return plan(pref, relation, **kwargs).execute()


def explain(
    pref: Preference,
    relation: Relation,
    **kwargs: Any,
) -> str:
    """The plan text (operators, algorithms, fired laws) without running it."""
    return plan(pref, relation, **kwargs).explain()
