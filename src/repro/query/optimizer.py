"""A heuristic preference query optimizer (the Section 7 roadmap item).

Given a preference term and a database set, the optimizer

1. simplifies the term with the algebra's rewrite rules (so e.g.
   ``P & P``, ``P (x) P^d`` or dual-of-dual never reach execution),
2. picks an evaluation strategy:

   * SCORE-representable terms -> one-pass :func:`sort_based_maxima`,
   * prioritized terms with chain heads -> a Proposition-11 cascade,
   * Pareto over injective chains -> vector skylines (2-d sweep for two
     dimensions, divide & conquer otherwise),
   * terms with a dominance-compatible sort key -> SFS,
   * everything else -> BNL (always correct),

3. places hard selections below the preference operator and quality
   filters (BUT ONLY) above it, and top-k on top for ranked queries.

``explain()`` on the resulting plan shows the chosen algorithms and every
algebra law that fired.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.algebra.rewriter import rewrite_trace, simplify
from repro.core.base_numerical import score_function_of
from repro.core.constructors import PrioritizedPreference
from repro.core.preference import Preference, Row
from repro.query.algorithms import compatible_sort_key, skyline_axes
from repro.query.plan import (
    ButOnly,
    Cascade,
    GroupedPreferenceSelect,
    HardSelect,
    Limit,
    OrderBy,
    Plan,
    PlanNode,
    PreferenceSelect,
    Project,
    Scan,
    TopK,
)
from repro.query.quality import QualityCondition
from repro.relations.relation import Relation


def choose_algorithm(pref: Preference) -> str:
    """Pick the cheapest known-correct algorithm for a preference term."""
    if score_function_of(pref) is not None:
        return "sort"
    axes = skyline_axes(pref)
    if axes is not None:
        return "2d" if len(axes) == 2 else "dc"
    if compatible_sort_key(pref) is not None:
        return "sfs"
    return "bnl"


def _cascade_stages(
    pref: Preference,
) -> tuple[tuple[Preference, str], ...] | None:
    """Split ``P1 & ... & Pn`` into Proposition-11 cascade stages.

    Every stage except the last must be a (statically known) chain; the
    remaining suffix becomes one final stage.  Returns None when the head
    is not a chain (no cascade advantage).
    """
    if not isinstance(pref, PrioritizedPreference):
        return None
    children = list(pref.children)
    stages: list[tuple[Preference, str]] = []
    while len(children) > 1 and children[0].is_chain() is True:
        head = children.pop(0)
        stages.append((head, choose_algorithm(head)))
    if not stages:
        return None
    rest: Preference
    rest = children[0] if len(children) == 1 else PrioritizedPreference(tuple(children))
    stages.append((rest, choose_algorithm(rest)))
    return tuple(stages)


def plan(
    pref: Preference | None,
    relation: Relation,
    hard: Callable[[Row], bool] | None = None,
    hard_label: str = "<predicate>",
    groupby: Sequence[str] | None = None,
    top_k: int | None = None,
    top_ties: str = "strict",
    but_only: Sequence[QualityCondition] | None = None,
    select: Sequence[str] | None = None,
    order_by: Sequence[tuple[str, bool]] | None = None,
    limit: int | None = None,
    use_rewriter: bool = True,
    algorithm: Any | None = None,
) -> Plan:
    """Build an execution plan for ``sigma[P](sigma_hard(R))`` and friends.

    ``pref=None`` plans a plain exact-match query (hard selection, ordering,
    projection, limit only).  ``algorithm`` forces one evaluation engine —
    a name from :data:`repro.query.algorithms.ALGORITHMS` or a callable —
    bypassing both automatic selection and cascade splitting.
    """
    node: PlanNode = Scan(relation)
    if hard is not None:
        node = HardSelect(node, hard, label=hard_label)

    if pref is None:
        for clause, value in (
            ("groupby", groupby), ("top_k", top_k), ("but_only", but_only)
        ):
            if value:
                raise ValueError(
                    f"{clause} requires a preference term, but none was given"
                )
        if order_by:
            node = OrderBy(node, tuple(order_by))
        if select:
            node = Project(node, tuple(select))
        if limit is not None:
            node = Limit(node, limit)
        return Plan(node)

    rewrites: tuple[tuple[str, str, str], ...] = ()
    if use_rewriter:
        rewrites = tuple(rewrite_trace(pref))
        pref = simplify(pref)

    if top_k is not None:
        node = TopK(node, pref, top_k, ties=top_ties)
    elif groupby:
        node = GroupedPreferenceSelect(
            node,
            pref,
            tuple(groupby),
            algorithm=choose_algorithm(pref) if algorithm is None else algorithm,
        )
    elif algorithm is not None:
        node = PreferenceSelect(node, pref, algorithm=algorithm)
    else:
        stages = _cascade_stages(pref)
        if stages is not None:
            node = Cascade(node, stages)
        else:
            node = PreferenceSelect(node, pref, algorithm=choose_algorithm(pref))

    if but_only:
        node = ButOnly(node, pref, tuple(but_only))
    if order_by:
        node = OrderBy(node, tuple(order_by))
    if select:
        node = Project(node, tuple(select))
    if limit is not None:
        node = Limit(node, limit)
    return Plan(node, rewrites)


def execute(
    pref: Preference,
    relation: Relation,
    **kwargs: Any,
) -> Relation:
    """Plan and run in one step — the convenience entry point."""
    return plan(pref, relation, **kwargs).execute()


def explain(
    pref: Preference,
    relation: Relation,
    **kwargs: Any,
) -> str:
    """The plan text (operators, algorithms, fired laws) without running it."""
    return plan(pref, relation, **kwargs).explain()
