"""The fluent preference query API — one entry point over the whole engine.

:class:`PreferenceQuery` is a chainable, lazily-evaluated builder over the
paper's declarative model: hard ``where`` filters, a ``prefer`` term
evaluated under BMO (with optional ``cascade`` stages, ``groupby``
partitioning, ``but_only`` quality supervision and ``top``-k ranking), plus
presentation clauses (``order_by``, ``select``, ``limit``).  Nothing runs
until a terminal is called:

* :meth:`~PreferenceQuery.run` — plan and execute, returning a relation
  (or a plain row list when built over one),
* :meth:`~PreferenceQuery.explain` — the plan text: operators, chosen
  algorithms, and the algebra laws that fired,
* :meth:`~PreferenceQuery.to_sql` — the plug-and-go SQL92 rewriting,
* :meth:`~PreferenceQuery.iter` — iterate result rows.

Execution backends are a planner concern, not a semantic one: the winnow
runs on the row engine or — for large vector-skyline workloads — on the
columnar engine (:mod:`repro.engine`), with identical results either way.
:meth:`~PreferenceQuery.backend` overrides the automatic choice.

All terminals funnel through one planning pipeline
(:func:`repro.query.optimizer.plan` -> :class:`repro.query.plan.Plan`), the
same path the Preference SQL executor and the Preference XPath evaluator
take — every front end shares one seam.

Builders are immutable: each clause method returns a new query, so prefixes
can be shared and reused freely::

    from repro import Session, pareto, AROUND, POS

    s = Session({"car": rows})
    q = s.query("car").where(make="Opel")
    best = q.prefer(pareto(POS("color", {"red"}), AROUND("price", 40000)))
    print(best.explain())
    for row in best.top(3).run():
        ...

Queries bound to a :class:`~repro.session.Session` memoize their plans in
the session's plan cache, keyed on (query fingerprint, relation name,
relation version) — repeated queries skip planning until the catalog entry
changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence, TYPE_CHECKING

from repro.core.constructors import PrioritizedPreference
from repro.core.preference import Preference, Row
from repro.query import optimizer as _optimizer
from repro.query.plan import Plan
from repro.query.quality import QualityCondition
from repro.relations.relation import Relation
from repro.relations.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.session import Session


#: ``where()`` keyword operator suffixes: ``price__le=4`` -> ``price <= 4``.
_WHERE_OPS = {
    "eq": "=",
    "ne": "<>",
    "lt": "<",
    "le": "<=",
    "gt": ">",
    "ge": ">=",
}


@dataclass(frozen=True)
class WhereSpec:
    """One hard filter: a predicate plus optional SQL AST provenance.

    The AST (a :class:`repro.psql.ast.HardExpr`) is kept when known so the
    query stays SQL-translatable and hashable for plan caching; a bare
    callable is fingerprinted by identity instead.
    """

    predicate: Callable[[Row], bool]
    label: str = "<predicate>"
    ast: Any = None

    @property
    def cache_key(self) -> Any:
        return self.ast if self.ast is not None else self.predicate


class PreferenceQuery:
    """A lazily-planned preference query over one relation."""

    __slots__ = (
        "_session", "_source", "_pref", "_cascades", "_wheres", "_groupby",
        "_quality", "_top", "_top_ties", "_select", "_order_by", "_limit",
        "_algorithm", "_backend", "_partitions", "_use_rewriter", "_sql_ast",
        "_revised_from",
    )

    def __init__(
        self,
        source: Any,
        session: "Session | None" = None,
    ):
        self._session = session
        self._source = source  # ("catalog", name) | ("relation", Relation) | ("rows", tuple)
        self._pref: Preference | None = None
        self._cascades: tuple[Preference, ...] = ()
        self._wheres: tuple[WhereSpec, ...] = ()
        self._groupby: tuple[str, ...] = ()
        self._quality: tuple[QualityCondition, ...] = ()
        self._top: int | None = None
        self._top_ties: str = "strict"
        self._select: tuple[str, ...] | None = None
        self._order_by: tuple[tuple[str, bool], ...] = ()
        self._limit: int | None = None
        self._algorithm: Any = None
        self._backend: str = "auto"
        self._partitions: int | None = None
        self._use_rewriter: bool = True
        self._sql_ast: Any = None  # original psql ast.Query, when parsed
        self._revised_from: Preference | None = None  # pre-revision term

    # -- construction -----------------------------------------------------------

    @classmethod
    def over(
        cls, data: Relation | Sequence[Mapping[str, Any]]
    ) -> "PreferenceQuery":
        """A query over a relation or a plain list of dict rows.

        Row-list queries return row lists from :meth:`run`, mirroring the
        shape-preservation of the historical functional helpers.
        """
        if isinstance(data, Relation):
            return cls(("relation", data))
        return cls(("rows", tuple(dict(r) for r in data)))

    def _copy(self, **changes: Any) -> "PreferenceQuery":
        out = PreferenceQuery.__new__(PreferenceQuery)
        for name in PreferenceQuery.__slots__:
            setattr(out, name, changes.get(name.lstrip("_"), getattr(self, name)))
        return out

    # -- fail-fast validation ---------------------------------------------------

    def _resolved_schema(self) -> Any:
        """The source schema when statically resolvable, else ``None``.

        Row-list sources infer their schema from the preference term, so
        only catalog and Relation sources support builder-time checks.
        """
        kind, payload = self._source
        try:
            if kind == "catalog" and self._session is not None:
                return self._session.catalog.get(payload).schema
            if kind == "relation":
                return payload.schema
        except Exception:
            return None
        return None

    def _fail_fast(self, clause: str, code: str, attributes: Any) -> None:
        """Raise :class:`DiagnosticError` for unknown attributes, eagerly.

        Builder methods call this so a typo surfaces at the call site
        (with its ``PQxxx`` code) instead of deep inside plan execution.
        Silently skipped when the schema cannot be resolved yet.
        """
        schema = self._resolved_schema()
        if schema is None:
            return
        for attribute in attributes:
            if attribute not in schema:
                from repro.analysis.diagnostics import (
                    Diagnostic,
                    DiagnosticError,
                )

                raise DiagnosticError(Diagnostic(
                    code=code,
                    clause=clause,
                    attribute=attribute,
                    message=(
                        f"unknown attribute {attribute!r}; "
                        f"relation has {list(schema.names)}"
                    ),
                ))

    # -- chainable clauses ------------------------------------------------------

    def where(
        self,
        condition: Callable[[Row], bool] | Any | None = None,
        label: str | None = None,
        **equalities: Any,
    ) -> "PreferenceQuery":
        """Add a hard (exact-match) filter, applied *before* the winnow.

        Accepts a row predicate, a Preference SQL WHERE AST node, and/or
        attribute conditions as keyword arguments: ``where(make="Opel")``
        is an equality, and a ``__op`` suffix names a comparison —
        ``where(price__le=40000)`` means ``price <= 40000`` (``eq``,
        ``ne``, ``lt``, ``le``, ``gt``, ``ge``; only these six suffixes
        are reserved — any other keyword, double underscores included, is
        an equality on the attribute of that name, so a column literally
        named like ``score__le`` needs an explicit AST node).  Multiple
        ``where`` calls conjoin.

        Keyword and AST conditions carry syntactic provenance the plan
        rewriter can analyse — equality conjuncts feed constant pruning,
        and bound conjuncts rigid w.r.t. the preference are certified by
        the ``push_select_below_winnow`` rule; bare callables are opaque
        and always stay below the winnow.
        """
        specs = list(self._wheres)
        if condition is not None:
            if callable(condition):
                specs.append(
                    WhereSpec(condition, label or _callable_label(condition))
                )
            else:
                from repro.psql.ast import HardExpr
                from repro.psql.translate import render_where, translate_where

                if not isinstance(condition, HardExpr):
                    raise TypeError(
                        "where() takes a callable predicate, a psql WHERE "
                        f"AST node, or attribute keywords; got {condition!r}"
                    )
                specs.append(
                    WhereSpec(
                        translate_where(condition),
                        label or render_where(condition),
                        ast=condition,
                    )
                )
        for keyword, value in equalities.items():
            from repro.psql.ast import Comparison
            from repro.psql.translate import translate_where

            attribute, op = keyword, "="
            if "__" in keyword:
                head, _, suffix = keyword.rpartition("__")
                if suffix in _WHERE_OPS and head:
                    # Only the six known suffixes are reserved; any other
                    # keyword — including attribute names that contain a
                    # double underscore — stays a plain equality filter.
                    attribute, op = head, _WHERE_OPS[suffix]
            expr = Comparison(attribute, op, value)
            specs.append(
                WhereSpec(
                    translate_where(expr), f"{attribute} {op} {value!r}", ast=expr
                )
            )
        if len(specs) == len(self._wheres):
            raise TypeError("where() needs a condition or attribute keywords")
        from repro.analysis.checker import _where_attributes

        self._fail_fast("where", "PQ104", [
            attribute
            for spec in specs[len(self._wheres):]
            if spec.ast is not None
            for attribute, _ in _where_attributes(spec.ast)
        ])
        return self._copy(wheres=tuple(specs))

    def prefer(self, pref: Preference) -> "PreferenceQuery":
        """Set the soft preference term ``P`` of ``sigma[P](R)``.

        Calling ``prefer`` again replaces the term; use :meth:`cascade` to
        append lower-priority stages instead.
        """
        if not isinstance(pref, Preference):
            raise TypeError(f"prefer() needs a Preference, got {pref!r}")
        self._fail_fast("preferring", "PQ101", sorted(pref.attribute_set))
        return self._copy(pref=pref)

    def cascade(self, pref: Preference) -> "PreferenceQuery":
        """Append a lower-priority preference stage (SQL's CASCADE clause).

        ``q.prefer(p1).cascade(p2)`` evaluates ``p1 & p2`` (prioritized
        accumulation): among ``p1``'s best matches, prefer by ``p2``.
        """
        if not isinstance(pref, Preference):
            raise TypeError(f"cascade() needs a Preference, got {pref!r}")
        self._fail_fast("preferring", "PQ101", sorted(pref.attribute_set))
        return self._copy(cascades=(*self._cascades, pref))

    def personalize(
        self, pref: Preference | None, canonical: bool = True
    ) -> "PreferenceQuery":
        """Compose a per-user preference term *over* the query's own.

        Server-side personalization (the paper's P&O story): the user's
        profile term dominates and the submitted base term breaks ties —
        ``prio(user_pref, base_pref)``, Definition 9.  With ``canonical``
        (the default) the composed term is normalized via
        :func:`repro.algebra.equivalence.canonical_form`, so two users
        whose profiles are algebraically equivalent produce queries with
        *equal* preference signatures — the property the multi-tenant
        serving layer keys shared continuous views on.

        ``pref=None`` means "no profile": the query is returned with its
        base term canonicalized (when asked), so profiled and unprofiled
        users of equivalent terms still share.
        """
        if pref is not None and not isinstance(pref, Preference):
            raise TypeError(
                f"personalize() needs a Preference or None, got {pref!r}"
            )
        base = self.preference
        if pref is None:
            if base is None or not canonical:
                return self
            composed = base
        elif base is None:
            self._fail_fast("preferring", "PQ101", sorted(pref.attribute_set))
            composed = pref
        else:
            self._fail_fast("preferring", "PQ101", sorted(pref.attribute_set))
            composed = PrioritizedPreference((pref, base))
        if canonical:
            from repro.algebra.equivalence import canonical_form

            composed = canonical_form(composed)
        return self._copy(pref=composed, cascades=())

    def refine(self, pref: Preference) -> "PreferenceQuery":
        """Refine the preference by a lower-priority stage, tracking the
        delta.

        Semantically ``cascade(pref)`` — the combined term is the
        prioritized ``old & pref`` — but the query remembers the term it
        was revised from, so :attr:`revision` classifies the delta (a
        prioritized append is always an order refinement, Definition 9)
        and :meth:`explain` names the proving law.  This is the fluent
        face of the revision layer (:mod:`repro.query.revision`): the
        serving layer answers such deltas from the standing view instead
        of recomputing.
        """
        if not isinstance(pref, Preference):
            raise TypeError(f"refine() needs a Preference, got {pref!r}")
        self._fail_fast("preferring", "PQ101", sorted(pref.attribute_set))
        old = self.preference
        return self._copy(
            cascades=(*self._cascades, pref), revised_from=old
        )

    def revise(self, pref: Preference) -> "PreferenceQuery":
        """Replace the whole preference term, tracking the delta.

        Unlike :meth:`prefer` (a plain replacement) the query remembers
        the term it was revised from: :attr:`revision` classifies the
        delta — refinement, contraction, or incomparable — and
        :meth:`explain` reports the classification with its proving law
        and restart point.  Any cascade stages fold into the remembered
        old term and are cleared.
        """
        if not isinstance(pref, Preference):
            raise TypeError(f"revise() needs a Preference, got {pref!r}")
        self._fail_fast("preferring", "PQ101", sorted(pref.attribute_set))
        old = self.preference
        return self._copy(pref=pref, cascades=(), revised_from=old)

    @property
    def revision(self) -> Any:
        """The classified delta of the last :meth:`refine` / :meth:`revise`
        (a :class:`~repro.query.revision.Revision`), or ``None``.

        Catalog-bound queries classify under the relation's constraint
        registry, so an appended stage that is provably indifferent on
        the instance is recognized as a semantic no-op.
        """
        if self._revised_from is None or self.preference is None:
            return None
        from repro.query.revision import classify_revision

        constraints = None
        kind, payload = self._source
        if kind == "catalog" and self._session is not None:
            try:
                from repro.analysis.constraints import constraint_registry

                rel = self._session.catalog.get(payload)
                constraints = constraint_registry(
                    rel, self.preference.attributes
                )
            except Exception:
                constraints = None
        return classify_revision(
            self._revised_from, self.preference, constraints=constraints
        )

    def groupby(self, *attributes: str) -> "PreferenceQuery":
        """Evaluate the preference within each group (Definition 16)."""
        if not attributes:
            raise ValueError("groupby() needs at least one attribute")
        self._fail_fast("grouping", "PQ106", attributes)
        return self._copy(groupby=tuple(attributes))

    def but_only(
        self, *conditions: QualityCondition | tuple
    ) -> "PreferenceQuery":
        """Supervise required quality (the BUT ONLY clause, Section 6.1).

        Conditions are :class:`~repro.query.quality.QualityCondition`
        objects or ``(kind, attribute, op, bound)`` tuples, e.g.
        ``("distance", "price", "<=", 2000)``.
        """
        if not conditions:
            raise ValueError("but_only() needs at least one condition")
        cooked = tuple(
            c if isinstance(c, QualityCondition) else QualityCondition(*c)
            for c in conditions
        )
        self._fail_fast("but only", "PQ106", [c.attribute for c in cooked])
        return self._copy(quality=(*self._quality, *cooked))

    def top(self, k: int, ties: str = "strict") -> "PreferenceQuery":
        """Switch to ranked k-best semantics (Section 6.2) for SCORE terms."""
        if k < 1:
            raise ValueError(f"k must be positive, got {k}")
        if ties not in ("strict", "all"):
            raise ValueError(f"ties must be 'strict' or 'all', got {ties!r}")
        return self._copy(top=k, top_ties=ties)

    def select(self, *attributes: str) -> "PreferenceQuery":
        """Project the result onto ``attributes`` (the SELECT list)."""
        if not attributes:
            raise ValueError("select() needs at least one attribute")
        self._fail_fast("select", "PQ106", attributes)
        return self._copy(select=tuple(attributes))

    def order_by(
        self, *keys: str | tuple[str, bool], descending: bool = False
    ) -> "PreferenceQuery":
        """Presentation ordering; keys are names or (name, descending)."""
        if not keys:
            raise ValueError("order_by() needs at least one key")
        cooked = tuple(
            (k, descending) if isinstance(k, str) else (k[0], bool(k[1]))
            for k in keys
        )
        self._fail_fast("order by", "PQ106", [name for name, _ in cooked])
        return self._copy(order_by=(*self._order_by, *cooked))

    def limit(self, n: int) -> "PreferenceQuery":
        """Keep only the first ``n`` result rows (applied after ordering).

        A presentation clause like :meth:`order_by` — unlike :meth:`top`
        it does not change BMO semantics, it just truncates the output.
        """
        if n < 0:
            raise ValueError(f"limit must be non-negative, got {n}")
        return self._copy(limit=n)

    def using(self, algorithm: Any) -> "PreferenceQuery":
        """Force one evaluation engine (an ALGORITHMS name or a callable),
        bypassing automatic selection and cascade splitting.

        The columnar kernels are reachable here by name too (``"vsfs"``,
        ``"vbnl"``); for planner-driven backend choice use :meth:`backend`
        instead.  Mutually exclusive with a non-``"auto"`` backend hint.
        """
        return self._copy(algorithm=algorithm)

    def backend(
        self, name: str, partitions: int | None = None
    ) -> "PreferenceQuery":
        """Steer the winnow between execution backends (default ``"auto"``).

        * ``"auto"`` — the planner's statistics-driven cost model ranks
          the row engine against serial and partitioned columnar
          execution and takes the cheapest (see
          :func:`repro.query.optimizer.choose_backend`),
        * ``"columnar"`` — force the columnar engine (pure-Python kernels
          when NumPy is absent); planning raises ``ValueError`` if the
          preference has no columnar form,
        * ``"parallel"`` — force partition-and-merge parallel execution
          (:mod:`repro.engine.parallel`); ``partitions`` fixes the worker
          count (default: the visible core count).  Dominance winnows
          need a columnar form; grouped winnows partition by group hash
          and top-k by row range, so they take any term,
        * ``"row"`` — never columnarize.

        Results are identical across backends; only the evaluation
        representation changes.  The choice is visible in
        :meth:`explain` (columnar plans print
        ``backend=columnar kernel=...`` plus the cost-model rationale).
        """
        from repro.query.optimizer import BACKENDS

        if name not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {name!r}")
        if partitions is not None:
            if name != "parallel":
                raise ValueError(
                    "partitions= only applies to backend('parallel')"
                )
            if partitions < 1:
                raise ValueError(
                    f"partitions must be positive, got {partitions}"
                )
        return self._copy(backend=name, partitions=partitions)

    def optimize(self, enabled: bool = True) -> "PreferenceQuery":
        """Toggle the algebraic rewriter (on by default)."""
        return self._copy(use_rewriter=bool(enabled))

    def _with_sql_ast(self, ast_query: Any) -> "PreferenceQuery":
        return self._copy(sql_ast=ast_query)

    # -- introspection ----------------------------------------------------------

    @property
    def preference(self) -> Preference | None:
        """The combined preference term (prefer + cascades), if any."""
        if self._pref is None:
            return None
        if not self._cascades:
            return self._pref
        return PrioritizedPreference((self._pref, *self._cascades))

    def fingerprint(self) -> tuple:
        """A hashable structural identity for plan caching and equality.

        Two queries with equal fingerprints (over the same relation
        version) plan and execute identically, regardless of the order
        their clauses were chained in.  The rewrite engine's
        :data:`~repro.query.rewrite.RULESET_VERSION` participates, so a
        session plan cache can never replay a plan whose rewrites an
        upgraded rule set would no longer produce.
        """
        from repro.query.rewrite import RULESET_VERSION

        pref = self._pref.signature if self._pref is not None else None
        return (
            "pq1",
            RULESET_VERSION,
            self._source_key(),
            pref,
            tuple(c.signature for c in self._cascades),
            tuple(w.cache_key for w in self._wheres),
            self._groupby,
            self._quality,
            self._top,
            self._top_ties,
            self._select,
            self._order_by,
            self._limit,
            self._algorithm,
            self._backend,
            self._partitions,
            self._use_rewriter,
            self._storage_identity(),
        )

    def _storage_identity(self) -> str:
        """The session's storage-backend name (fingerprint component).

        Plans built against a SQL mirror hold StorageScan leaves bound to
        that backend; a cache shared across differently-backed sessions
        must never replay one for the other.
        """
        if self._session is None:
            return "memory"
        binding = getattr(self._session, "storage", None)
        if binding is None:
            return "memory"
        return binding.backend.name

    def _source_key(self) -> tuple:
        kind, payload = self._source
        if kind == "catalog":
            return ("catalog", payload.lower())
        return (kind, id(payload))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PreferenceQuery):
            return NotImplemented
        try:
            return self.fingerprint() == other.fingerprint()
        except TypeError:  # unhashable payloads: fall back to identity
            return self is other

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __repr__(self) -> str:
        kind, payload = self._source
        name = payload if kind == "catalog" else getattr(
            payload, "name", f"{len(payload)} rows"
        )
        clauses = []
        if self._wheres:
            clauses.append(f"where={' AND '.join(w.label for w in self._wheres)}")
        if self._pref is not None:
            clauses.append(f"prefer={self.preference!r}")
        if self._groupby:
            clauses.append(f"groupby={list(self._groupby)}")
        if self._quality:
            clauses.append(f"but_only={[str(c) for c in self._quality]}")
        if self._top is not None:
            clauses.append(f"top={self._top}")
        inner = ", ".join([repr(name), *clauses])
        return f"PreferenceQuery({inner})"

    # -- planning ---------------------------------------------------------------

    def relation(self) -> Relation:
        """Resolve the source relation (catalog lookup happens here)."""
        kind, payload = self._source
        if kind == "catalog":
            if self._session is None:
                raise ValueError(
                    f"query over catalog relation {payload!r} needs a Session"
                )
            return self._session.catalog.get(payload)
        if kind == "relation":
            return payload
        return _rows_relation(payload, self.preference)

    def plan(self) -> Plan:
        """Build (or fetch from the session plan cache) the execution plan."""
        kind, payload = self._source
        if self._session is not None and kind == "catalog":
            name = payload.lower()
            version = self._session.catalog.version(name)
            key = (self.fingerprint(), name, version)
            try:
                hash(key)
            except TypeError:  # unhashable literal somewhere: skip caching
                return self._build_plan()
            return self._session.cached_plan(key, self._build_plan)
        return self._build_plan()

    def _build_plan(self) -> Plan:
        pref = self.preference
        if pref is None and (self._groupby or self._quality or self._top):
            raise ValueError(
                "groupby/but_only/top need a preference term; call .prefer()"
            )
        return _optimizer.plan(
            pref,
            self.relation(),
            wheres=self._wheres,
            groupby=self._groupby or None,
            top_k=self._top,
            top_ties=self._top_ties,
            but_only=self._quality or None,
            select=self._select,
            order_by=self._order_by or None,
            limit=self._limit,
            use_rewriter=self._use_rewriter,
            algorithm=self._algorithm,
            backend=self._backend,
            partitions=self._partitions,
            storage=self._storage_backend(),
            source_name=self._catalog_source_name(),
        )

    def _storage_backend(self) -> Any:
        if self._session is None:
            return None
        binding = getattr(self._session, "storage", None)
        return None if binding is None else binding.backend

    def _catalog_source_name(self) -> str | None:
        kind, payload = self._source
        return payload.lower() if kind == "catalog" else None

    # -- terminals --------------------------------------------------------------

    def run(self) -> Any:
        """Plan and execute; returns a Relation (or rows for row sources)."""
        result = self.plan().execute()
        if self._source[0] == "rows":
            return result.rows()
        return result

    def iter(self) -> Iterator[Row]:
        """Iterate the result rows."""
        result = self.plan().execute()
        return iter(result.rows())

    __iter__ = iter

    def count(self) -> int:
        """Plan, execute, and return only the result cardinality."""
        return len(self.plan().execute())

    def check(self) -> Any:
        """Statically analyse the query without executing it.

        Returns a :class:`~repro.analysis.diagnostics.CheckResult` of
        ``PQxxx`` diagnostics, ordered errors → warnings → infos — never
        raises.  Use ``check().raise_for_errors()`` for a hard gate, or
        ``check().ok`` as a boolean.  See ``docs/analysis.md`` for the
        diagnostic-code catalog.
        """
        from repro.analysis import check_query

        return check_query(self)

    def explain(self) -> str:
        """The plan text: operators, algorithms, and the rewrite trace.

        Plans with rewrites show a compact ``rewrites: [rule, ...]``
        summary (term-level algebra laws and plan-level rules such as
        ``push_select_below_winnow`` / ``split_prio`` alike) followed by
        per-step ``rule: before -> after`` lines; plans without any end
        with ``rewrites applied: (none)``.  When the static analyzer
        (:meth:`check`) finds errors or warnings, they are appended as a
        ``diagnostics:`` section.
        """
        plan = self.plan()
        text = plan.explain()
        if not plan.rewrites:
            text += "\nrewrites applied: (none)"
        revision = self.revision
        if revision is not None:
            text += "\n" + revision.describe()
        problems = [
            d for d in self.check().diagnostics if d.severity != "info"
        ]
        if problems:
            text += "\ndiagnostics:\n" + "\n".join(
                f"  {d}" for d in problems
            )
        return text

    def to_sql(self) -> str:
        """The plug-and-go SQL92 rewriting of this query (Section 6.1).

        Queries parsed from Preference SQL text translate verbatim; fluent
        queries are reconstructed from their clauses.  Raises
        ``ValueError`` for constructs with no SQL equivalent (callable
        predicates, SCORE/RANK terms needing a function registry).
        """
        from repro.psql.sqlgen import to_sql92

        return to_sql92(self._ast_query())

    def _ast_query(self) -> Any:
        if self._sql_ast is not None:
            return self._sql_ast
        from repro.psql import ast as A

        kind, payload = self._source
        if kind == "catalog":
            table = payload
        else:
            table = getattr(payload, "name", None)
            if not table:
                raise ValueError(
                    "to_sql() needs a named relation source (catalog or "
                    "Relation); got a bare row list"
                )

        where: Any = None
        if self._wheres:
            asts = [w.ast for w in self._wheres]
            if any(a is None for a in asts):
                bad = [w.label for w in self._wheres if w.ast is None]
                raise ValueError(
                    "to_sql() cannot translate callable where-predicates "
                    f"{bad}; build them from attribute keywords or psql AST"
                )
            where = asts[0] if len(asts) == 1 else A.BoolOp("AND", tuple(asts))

        preferring = (
            preference_to_ast(self._pref) if self._pref is not None else None
        )
        cascades = tuple(preference_to_ast(c) for c in self._cascades)
        return A.Query(
            select=self._select if self._select is not None else "*",
            table=table,
            where=where,
            preferring=preferring,
            cascades=cascades,
            grouping=self._groupby,
            but_only=tuple(
                A.QualityExpr(c.kind, c.attribute, c.op, c.bound)
                for c in self._quality
            ),
            top=self._top,
            order_by=self._order_by,
            limit=self._limit,
        )


def _callable_label(fn: Callable) -> str:
    name = getattr(fn, "__name__", None)
    return f"<{name}>" if name and name != "<lambda>" else "<predicate>"


def _rows_relation(
    rows: tuple[Row, ...], pref: Preference | None
) -> Relation:
    """Wrap a plain row tuple in an anonymous relation for planning."""
    names: dict[str, None] = {}
    for row in rows:
        for key in row:
            names.setdefault(key, None)
    if not names and pref is not None:
        for attribute in pref.attributes:
            names.setdefault(attribute, None)
    return Relation("rows", Schema(list(names)), rows, validate=False)


def preference_to_ast(pref: Preference) -> Any:
    """Best-effort reconstruction of a Preference SQL PREFERRING AST.

    Covers the paper's named base constructors and the Pareto / prioritized
    accumulations — the terms Preference SQL itself can express.  Raises
    ``ValueError`` for terms with no syntactic equivalent (bare SCORE
    closures, rank(F), intersection, linear sum, duals).
    """
    from repro.core.base_nonnumerical import (
        ExplicitPreference,
        NegPreference,
        PosNegPreference,
        PosPosPreference,
        PosPreference,
    )
    from repro.core.base_numerical import (
        AroundPreference,
        BetweenPreference,
        HighestPreference,
        LowestPreference,
    )
    from repro.core.constructors import ParetoPreference
    from repro.psql import ast as A

    if isinstance(pref, PosNegPreference):
        return A.ElseChain(
            A.PosAtom(pref.attribute, tuple(sorted(pref.pos_set))),
            A.NegAtom(pref.attribute, tuple(sorted(pref.neg_set))),
        )
    if isinstance(pref, PosPosPreference):
        return A.ElseChain(
            A.PosAtom(pref.attribute, tuple(sorted(pref.pos1_set))),
            A.PosAtom(pref.attribute, tuple(sorted(pref.pos2_set))),
        )
    if isinstance(pref, PosPreference):
        return A.PosAtom(pref.attribute, tuple(sorted(pref.pos_set)))
    if isinstance(pref, NegPreference):
        return A.NegAtom(pref.attribute, tuple(sorted(pref.neg_set)))
    if isinstance(pref, ExplicitPreference):
        return A.ExplicitAtom(pref.attribute, pref.edges)
    if isinstance(pref, AroundPreference):
        return A.AroundAtom(pref.attribute, pref.z)
    if isinstance(pref, BetweenPreference):
        return A.BetweenAtom(pref.attribute, pref.low, pref.up)
    if isinstance(pref, HighestPreference):
        return A.HighestAtom(pref.attribute)
    if isinstance(pref, LowestPreference):
        return A.LowestAtom(pref.attribute)
    if isinstance(pref, ParetoPreference):
        return A.ParetoExpr(tuple(preference_to_ast(c) for c in pref.children))
    if isinstance(pref, PrioritizedPreference):
        return A.PriorExpr(tuple(preference_to_ast(c) for c in pref.children))
    raise ValueError(
        f"{type(pref).__name__} has no Preference SQL syntax; to_sql() "
        "supports the named base constructors, Pareto and prioritized terms"
    )
