"""Quality functions LEVEL and DISTANCE, and the BUT ONLY clause (§6.1).

Preference SQL exposes two quality measures over query results:

* ``LEVEL(attr)`` — the discrete level (Definition 2) a tuple reaches in
  the base preference touching ``attr`` (POS family, EXPLICIT),
* ``DISTANCE(attr)`` — the continuous distance for numerical base
  preferences (AROUND, BETWEEN).

The ``BUT ONLY`` clause then *supervises required quality*: the BMO result
is additionally filtered by quality conditions, possibly down to empty —
best matches are returned only if they are also good enough.  The same
machinery powers query explanation ("your best match is 3 days off the
requested start date").
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.core.base_nonnumerical import ExplicitPreference, LayeredPreference
from repro.core.base_numerical import BetweenPreference
from repro.core.preference import Preference, Row
from repro.query.bmo import _repack, _unpack
from repro.relations.relation import Relation

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "=": operator.eq,
    "<>": operator.ne,
}


def _coerce_bound(measured: Any, bound: Any) -> Any:
    """Unit-coerce numeric bounds against measured distances.

    Date-typed AROUND/BETWEEN preferences measure distances as timedeltas
    (the paper's trips example writes ``DISTANCE(start_date) <= 2``, meaning
    two days); a bare number bound is interpreted in days then.
    """
    import datetime

    if isinstance(measured, datetime.timedelta) and isinstance(bound, (int, float)):
        return datetime.timedelta(days=bound)
    return bound


def base_preferences_by_attribute(pref: Preference) -> dict[str, list[Preference]]:
    """All base (leaf) sub-preferences, keyed by single attribute name.

    Quality functions are attribute-addressed in Preference SQL
    (``DISTANCE(start_date) <= 2``); this walk finds which base preference
    the name refers to.  Multi-attribute leaves (e.g. SCORE over two
    columns) are skipped — they have no single-attribute address.
    """
    found: dict[str, list[Preference]] = {}
    stack: list[Preference] = [pref]
    while stack:
        node = stack.pop()
        if node.children:
            stack.extend(node.children)
            continue
        if len(node.attributes) == 1:
            found.setdefault(node.attributes[0], []).append(node)
    return found


def level_of(pref: Preference, attribute: str, row: Row) -> int | None:
    """``LEVEL(attribute)`` of a tuple: its level in the base preference on
    that attribute, or None when no level-bearing base preference exists."""
    for base in base_preferences_by_attribute(pref).get(attribute, ()):
        if isinstance(base, (LayeredPreference, ExplicitPreference)):
            return base.level(row[attribute])
    return None


def distance_of(pref: Preference, attribute: str, row: Row) -> Any | None:
    """``DISTANCE(attribute)`` of a tuple: its distance under the AROUND /
    BETWEEN base preference on that attribute, or None."""
    for base in base_preferences_by_attribute(pref).get(attribute, ()):
        if isinstance(base, BetweenPreference):
            return base.distance(row[attribute])
    return None


@dataclass(frozen=True)
class QualityCondition:
    """One BUT ONLY condition: ``KIND(attribute) op bound``."""

    kind: str  # "level" or "distance"
    attribute: str
    op: str
    bound: Any

    def __post_init__(self) -> None:
        if self.kind not in ("level", "distance"):
            raise ValueError(f"unknown quality kind {self.kind!r}")
        if self.op not in _OPS:
            raise ValueError(f"unknown operator {self.op!r}; known: {sorted(_OPS)}")

    def matches(self, pref: Preference, row: Row) -> bool:
        if self.kind == "level":
            measured = level_of(pref, self.attribute, row)
        else:
            measured = distance_of(pref, self.attribute, row)
        if measured is None:
            raise ValueError(
                f"no {self.kind}-bearing base preference on attribute "
                f"{self.attribute!r} in {pref!r}"
            )
        return _OPS[self.op](measured, _coerce_bound(measured, self.bound))

    def describe(self, pref: Preference, row: Row) -> str:
        """Explanation text: measured quality vs. required bound."""
        fn = level_of if self.kind == "level" else distance_of
        measured = fn(pref, self.attribute, row)
        verdict = "ok" if self.matches(pref, row) else "rejected"
        return (
            f"{self.kind.upper()}({self.attribute}) = {measured!r} "
            f"(required {self.op} {self.bound!r}): {verdict}"
        )

    def __str__(self) -> str:
        return f"{self.kind.upper()}({self.attribute}) {self.op} {self.bound!r}"


def but_only(
    pref: Preference,
    data: Relation | Sequence[Row],
    conditions: Sequence[QualityCondition],
) -> Any:
    """Filter (BMO) results by quality conditions — the BUT ONLY clause.

    Apply to the *result* of a preference query: BMO first relaxes wishes to
    the best available, BUT ONLY then rejects best matches that relaxed too
    far.  An empty answer is possible again — by explicit user request.
    """
    rows, template = _unpack(data)
    kept = [
        r for r in rows if all(c.matches(pref, r) for c in conditions)
    ]
    return _repack(kept, template)


def explain_quality(
    pref: Preference,
    data: Relation | Sequence[Row],
    conditions: Sequence[QualityCondition],
) -> list[str]:
    """Per-tuple explanation lines for each quality condition."""
    rows, _ = _unpack(data)
    lines = []
    for i, row in enumerate(rows):
        for cond in conditions:
            lines.append(f"tuple {i}: {cond.describe(pref, row)}")
    return lines
