"""The ranked ("k-best") query model of Section 6.2.

``rank(F)`` preferences are mostly chains, so BMO would return a single best
object — too few to choose from.  Multi-feature engines therefore use k-best
semantics: the top ``k`` objects by combined score, deliberately including
some non-maximal ones.  This module implements

* :func:`k_best` — the k-best retrieval itself, with a tie policy (the
  engine-level operator; the historical :func:`top_k` helper is a
  deprecated shim through :class:`~repro.query.api.PreferenceQuery`),
* :func:`threshold_topk` — a Quick-Combine / threshold-style algorithm
  ([GBK00]) that answers top-k from per-feature sorted access without
  scoring the whole database, plus access statistics (the Section 6.2
  benchmark reproduces "stops after a small prefix" from these stats).
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.base_numerical import ScorePreference
from repro.core.constructors import RankPreference
from repro.core.preference import Row
from repro.query.bmo import _repack, _unpack
from repro.relations.relation import Relation


def k_best(
    pref: ScorePreference,
    data: Relation | Sequence[Row],
    k: int,
    ties: str = "strict",
) -> Any:
    """The ``k`` best rows by ``pref``'s score, best first.

    ``ties="strict"`` returns exactly ``k`` rows (stable order breaks
    ties); ``ties="all"`` extends the cut to include every row scoring
    equal to the k-th one, so the answer is deterministic as a set.
    """
    if not isinstance(pref, ScorePreference):
        raise TypeError(
            f"k-best semantics needs a SCORE preference, got {type(pref).__name__}"
        )
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if ties not in ("strict", "all"):
        raise ValueError(f"ties must be 'strict' or 'all', got {ties!r}")
    rows, template = _unpack(data)
    scored = [(pref.score(r), i) for i, r in enumerate(rows)]
    # Stable: sort on score descending, original position ascending.
    order = sorted(range(len(rows)), key=lambda i: (_Neg(scored[i][0]), i))
    cut = order[:k]
    if ties == "all" and len(order) > k and cut:
        kth_score = scored[cut[-1]][0]
        for i in order[k:]:
            if scored[i][0] == kth_score:
                cut.append(i)
            else:
                break
    return _repack([rows[i] for i in cut], template)


def top_k(
    pref: ScorePreference,
    data: Relation | Sequence[Row],
    k: int,
    ties: str = "strict",
) -> Any:
    """Deprecated shim for k-best retrieval.

    Use ``PreferenceQuery.over(data).prefer(pref).top(k, ties=ties).run()``
    instead; the shim routes through the same unified planning pipeline.
    """
    warnings.warn(
        "top_k() is deprecated; use PreferenceQuery.over(data).prefer(pref)"
        ".top(k, ties=ties).run() (see repro.query.api) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.query.api import PreferenceQuery

    return (
        PreferenceQuery.over(data)
        .prefer(pref)
        .top(k, ties=ties)
        .optimize(False)
        .run()
    )


class _Neg:
    """Order-reversing sort wrapper for arbitrary comparable scores."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Neg") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Neg) and self.value == other.value


@dataclass
class ThresholdStats:
    """Work performed by :func:`threshold_topk`."""

    sorted_accesses: int = 0
    random_accesses: int = 0
    objects_seen: int = 0
    rounds: int = 0

    @property
    def objects_scored(self) -> int:
        return self.objects_seen


def threshold_topk(
    pref: RankPreference,
    data: Relation | Sequence[Row],
    k: int,
) -> tuple[Any, ThresholdStats]:
    """Top-k for ``rank(F)`` by threshold descent over sorted feature lists.

    Requires ``F`` monotone in every argument (true for the weighted sums
    and cosine aggregates of Section 6.2).  One sorted list per child
    preference, scanned in lockstep; an object's full score is computed on
    first sight (random access).  The *threshold* is ``F`` applied to the
    scores at the current scan frontier — no unseen object can beat it, so
    the scan stops as soon as ``k`` seen objects score at least the
    threshold.  Returns ``(top-k rows, access statistics)``.
    """
    if not isinstance(pref, RankPreference):
        raise TypeError(
            f"threshold_topk needs a rank(F) preference, got {type(pref).__name__}"
        )
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    rows, template = _unpack(data)
    stats = ThresholdStats()
    n = len(rows)
    if n == 0:
        return _repack([], template), stats

    children = pref.children
    child_scores = [
        [c.score(r) for r in rows] for c in children  # type: ignore[attr-defined]
    ]
    # Sorted access lists: row indices by child score, best first.
    lists = [
        sorted(range(n), key=lambda i, s=scores: _Neg(s[i]))
        for scores in child_scores
    ]

    combine = pref.combine
    seen: set[int] = set()
    heap: list[tuple[Any, int]] = []  # (full score, row index) min-heap
    depth = 0
    while depth < n:
        frontier = []
        for li, lst in enumerate(lists):
            idx = lst[depth]
            stats.sorted_accesses += 1
            frontier.append(child_scores[li][lst[depth]])
            if idx not in seen:
                seen.add(idx)
                stats.random_accesses += 1
                stats.objects_seen += 1
                full = combine(*(child_scores[li2][idx] for li2 in range(len(lists))))
                if len(heap) < k:
                    heapq.heappush(heap, (full, idx))
                elif heap[0][0] < full:
                    heapq.heapreplace(heap, (full, idx))
        stats.rounds += 1
        depth += 1
        threshold = combine(*frontier)
        if len(heap) >= k and not (heap[0][0] < threshold):
            break

    best = sorted(heap, key=lambda si: (_Neg(si[0]), si[1]))
    return _repack([rows[i] for _, i in best], template), stats
