"""Algebraic plan rewriting: law-driven, cost-free plan-to-plan transforms.

The term rewriter (:mod:`repro.algebra.rewriter`) normalizes preference
*terms* by the paper's propositions.  This module is the second rewrite
layer the optimizer runs: it transforms whole *plans*, using the
winnow-level laws from Kießling §4 and Chomicki's semantic optimization of
preference queries (cs/0402003, cs/0510036).  Every rule is equivalence
preserving — rewritten plans return exactly the rows the canonical plan
returns — and every application is recorded in the plan's rewrite trace,
surfaced by ``explain()`` as ``rewrites: [...]``.

Rule catalog (names as they appear in the trace):

``push_select_below_winnow``
    Winnow/σ commutation (Chomicki L1-style).  A selection is *rigid*
    w.r.t. a preference when satisfaction is closed under dominance: if
    ``x`` passes and ``y >_P x`` then ``y`` passes too.  Then
    ``σ(ω_P(R)) = ω_P(σ(R))`` and the selection may run below the winnow,
    where it shrinks the super-linear dominance phase instead of trimming
    its output.  Fires for (a) WHERE conjuncts the builder could prove
    rigid via :func:`is_rigid` (e.g. ``price <= c`` under a preference
    whose dominance only ever lowers ``price``), and (b) BUT ONLY quality
    conditions whose measure improves under dominance
    (:func:`quality_rigid` — e.g. ``DISTANCE(price) <= d`` when the
    AROUND base sits in certified position), which are converted into
    hard prefilters below the winnow.

``split_prio``
    Proposition 11: ``σ[P1 & P2](R) = σ[P2](σ[P1](R))`` when ``P1`` is a
    chain.  Prioritizations with chain heads become a
    :class:`~repro.query.plan.Cascade` of cheap single-stage winnows.

``decompose_pareto``
    Pareto accumulations whose arms are themselves prioritizations of
    chains over pairwise disjoint attributes (chains by Proposition 3h)
    decompose into one composite skyline axis per arm — each arm is
    rank-encoded independently and the vector kernel re-merges them, so
    the whole term evaluates as a vector skyline (columnar when large).

``prune_constant_pref``
    Equality selections below the winnow fix attributes to constants on
    the winnow's input; preference components over fixed attributes are
    indifferent there (all projections equal) and are dropped from the
    evaluated term.  A term that becomes fully constant drops the winnow
    entirely.

``drop_trivial_winnow``
    BMO no-ops: a winnow over an anti-chain term (e.g. after SV-style
    empty-domain normalization collapsed the term) or over a provably
    empty / single-tuple input is the identity and is removed.

``remove_redundant_winnow``
    Chomicki's semantic elimination (cs/0402003): integrity constraints
    from the analyzer's registry (declared on the schema or derived from
    statistics) prove the winnow is the identity — either the whole term
    is indifferent on every constraint-satisfying instance (all its
    attributes constant, or a BETWEEN interval covering the column's
    proven value range), or equality selections below pin a key and the
    input is at most one tuple.  The trace names the constraints used.

``winnow_to_sort``
    Constraints prove the term a **weak order** on the input, so the BMO
    set is the first ORDER-BY group and the winnow becomes a
    :class:`~repro.query.plan.SortedWinnow` (one argmax pass, no
    dominance tests).  Fires structurally when constraint pruning shrank
    the term or a key inside a chain head makes the stage-one BMO a
    single tuple (Proposition 11 then discharges all later stages); when
    the planner's algorithm is already sort-based, a key on the chain's
    attributes is recorded as a certification instead.

The rigidity analyses are deliberately *syntactic and conservative*: a
``None``/``False`` answer only costs an optimization, while a wrong
positive would change results — the hypothesis suite in
``tests/query/test_rewrite_properties.py`` checks rewritten plans against
naive evaluation across random terms, relations, and selections.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.base_nonnumerical import LayeredPreference
from repro.core.base_numerical import (
    BetweenPreference,
    HighestPreference,
    LowestPreference,
)
from repro.core.constructors import (
    DisjointUnionPreference,
    DualPreference,
    IntersectionPreference,
    ParetoPreference,
    PrioritizedPreference,
)
from repro.core.preference import AntiChain, Preference, Row, SubsetPreference
from repro.query.plan import (
    ButOnly,
    Cascade,
    ColumnarPreferenceSelect,
    GroupedPreferenceSelect,
    HardSelect,
    PlanNode,
    PreferenceSelect,
    Scan,
    SortedWinnow,
    StorageScan,
)
from repro.query.quality import QualityCondition, base_preferences_by_attribute

#: Version of the rewrite rule set.  Participates in the plan-cache
#: fingerprint (:meth:`repro.query.api.PreferenceQuery.fingerprint`), so
#: cached plans built by an older rule set can never be replayed.
#: 2: constraint-driven semantic rules (winnow_to_sort,
#: remove_redundant_winnow).
#: 3: storage prefilter pushdown (push_select_into_storage) — plans may
#: now hold StorageScan leaves bound to a backend mirror.
RULESET_VERSION = 3

#: One recorded rewrite: ``(rule, before, after)`` — the shape the term
#: rewriter uses, so plan-level and term-level steps share one trace.
RewriteStep = tuple[str, str, str]

_WINNOWS = (
    PreferenceSelect,
    ColumnarPreferenceSelect,
    Cascade,
    GroupedPreferenceSelect,
)

_FLIP = {"down": "up", "up": "down", "const": "const"}


# -- rigidity analysis --------------------------------------------------------------


def monotone_direction(pref: Preference, attribute: str) -> str | None:
    """How dominance moves ``attribute``: the guarantee ``y >_P x`` gives.

    * ``"down"`` — ``y[a] <= x[a]`` (dominators never raise the value),
    * ``"up"``  — ``y[a] >= x[a]``,
    * ``"const"`` — ``y[a] == x[a]``,
    * ``None`` — no guarantee derivable from the term's structure.

    Derived per constructor: LOWEST/HIGHEST are the directional bases;
    duals flip; Pareto and intersection *conjoin* child guarantees (their
    dominance needs every child better-or-projection-equal, so opposing
    directions force equality); prioritization only inherits the head's
    guarantee (later stages are unconstrained when an earlier stage
    decides); disjoint union takes the weakest common guarantee (any one
    child may decide).  Everything else — score terms like AROUND, layered
    terms, chains with opaque keys — answers ``None``.
    """
    if attribute not in pref.attribute_set:
        return None
    if isinstance(pref, LowestPreference):
        return "down"
    if isinstance(pref, HighestPreference):
        return "up"
    if isinstance(pref, AntiChain):
        return "const"  # dominance never holds: the guarantee is vacuous
    if isinstance(pref, DualPreference):
        inner = monotone_direction(pref.base, attribute)
        return _FLIP[inner] if inner is not None else None
    if isinstance(pref, SubsetPreference):
        return monotone_direction(pref.base, attribute)
    if isinstance(pref, (ParetoPreference, IntersectionPreference)):
        guarantees = {
            monotone_direction(c, attribute)
            for c in pref.children
            if attribute in c.attribute_set
        }
        guarantees.discard(None)
        if not guarantees:
            return None
        # All guarantees hold simultaneously; <= and >= together mean ==.
        if "const" in guarantees or {"down", "up"} <= guarantees:
            return "const"
        return next(iter(guarantees))
    if isinstance(pref, PrioritizedPreference):
        head = pref.children[0]
        if attribute not in head.attribute_set:
            return None  # a later stage may move it freely
        # Either the head decides (its guarantee holds) or the head ties
        # on its whole attribute set (the value is equal — stronger).
        return monotone_direction(head, attribute)
    if isinstance(pref, DisjointUnionPreference):
        guarantees = []
        for child in pref.children:
            guarantee = monotone_direction(child, attribute)
            if guarantee is None:
                return None
            guarantees.append(guarantee)
        # Any single child may witness dominance: keep the weakest bound.
        if set(guarantees) <= {"down", "const"}:
            return "down" if "down" in guarantees else "const"
        if set(guarantees) <= {"up", "const"}:
            return "up" if "up" in guarantees else "const"
        return None
    return None


def is_rigid(condition: Any, pref: Preference) -> bool:
    """Is a WHERE expression rigid (dominance-closed) w.r.t. ``pref``?

    ``condition`` is a Preference SQL hard AST node
    (:class:`repro.psql.ast.Comparison` / AND-:class:`~repro.psql.ast.BoolOp`);
    anything else — bare callables included — is conservatively mobile-free.
    A rigid condition satisfies ``x ∈ σ and y >_P x  ⇒  y ∈ σ``, which by
    the commutation law makes ``σ(ω_P(R)) = ω_P(σ(R))``: upper bounds need
    a ``down`` guarantee, lower bounds an ``up`` one, equalities ``const``.
    """
    from repro.psql.ast import BoolOp, Comparison

    if isinstance(condition, BoolOp):
        return condition.op == "AND" and all(
            is_rigid(part, pref) for part in condition.operands
        )
    if not isinstance(condition, Comparison):
        return False
    guarantee = monotone_direction(pref, condition.attribute)
    if guarantee is None:
        return False
    if condition.op in ("<", "<="):
        return guarantee in ("down", "const")
    if condition.op in (">", ">="):
        return guarantee in ("up", "const")
    if condition.op == "=":
        return guarantee == "const"
    return False


def _improves_under(pref: Preference, base: Preference) -> bool:
    """Does ``y >_P x`` imply ``y`` is better-or-projection-equal in ``base``?

    ``base`` must be a leaf of ``pref`` (identity, not equality).  Holds
    when the leaf sits in *certified position*: the term itself, any Pareto
    or intersection arm (their dominance constrains every arm), or the
    head of a prioritization (later stages only fire once the head ties).
    """
    if pref is base:
        return True
    if isinstance(pref, SubsetPreference):
        return _improves_under(pref.base, base)
    if isinstance(pref, (ParetoPreference, IntersectionPreference)):
        return any(_improves_under(child, base) for child in pref.children)
    if isinstance(pref, PrioritizedPreference):
        return _improves_under(pref.children[0], base)
    return False


def quality_rigid(condition: QualityCondition, pref: Preference) -> bool:
    """Is a BUT ONLY condition rigid, i.e. pushable below the winnow?

    True when the condition upper-bounds a quality measure (level and
    distance both improve downward), its measure-bearing base preference
    is unambiguous, and that base sits in certified position
    (:func:`_improves_under`) — then dominance can only improve the
    measure, so the filtered-out rows could never have dominated a
    survivor and ``σ_q(ω_P(R)) = ω_P(σ_q(R))``.
    """
    if condition.op not in ("<", "<="):
        return False
    from repro.core.base_nonnumerical import ExplicitPreference

    bases = base_preferences_by_attribute(pref).get(condition.attribute, [])
    if condition.kind == "level":
        # The candidate set must mirror what level_of() resolves against —
        # LayeredPreference *or* ExplicitPreference — so certifying "the"
        # base and measuring it can never diverge.  Certification then
        # additionally demands the single base be layered: layered
        # dominance is exactly "strictly smaller level", while EXPLICIT
        # levels are display labels, not proven monotone along every
        # closure edge.
        matching = [
            b for b in bases
            if isinstance(b, (LayeredPreference, ExplicitPreference))
        ]
        if len(matching) != 1 or not isinstance(matching[0], LayeredPreference):
            return False
    else:
        matching = [b for b in bases if isinstance(b, BetweenPreference)]
        if len(matching) != 1:
            return False
    return _improves_under(pref, matching[0])


# -- constant propagation from equality selections ----------------------------------


def fixed_attributes(condition: Any) -> frozenset[str]:
    """Attributes an AST condition pins to a single constant value."""
    from repro.psql.ast import BoolOp, Comparison

    if isinstance(condition, Comparison) and condition.op == "=":
        return frozenset((condition.attribute,))
    if isinstance(condition, BoolOp) and condition.op == "AND":
        out: frozenset[str] = frozenset()
        for part in condition.operands:
            out |= fixed_attributes(part)
        return out
    return frozenset()


def prune_constant(
    pref: Preference, fixed: frozenset[str]
) -> Preference | None:
    """Drop preference components over attributes fixed by equalities.

    On an input where every row agrees on ``fixed``, such components are
    indifferent (all projections equal): Pareto arms contribute neither
    strictness nor vetoes, prioritization stages always tie.  Returns the
    pruned (equivalent-on-that-input) term, or ``None`` when the whole
    term is constant and the winnow is the identity.
    """
    if not fixed or not (pref.attribute_set & fixed):
        return pref
    if pref.attribute_set <= fixed:
        return None
    if isinstance(pref, (ParetoPreference, PrioritizedPreference)):
        kept = []
        changed = False
        for child in pref.children:
            pruned = prune_constant(child, fixed)
            if pruned is None:
                changed = True
                continue
            if pruned is not child:
                changed = True
            kept.append(pruned)
        if not changed:
            return pref
        if not kept:
            return None
        if len(kept) == 1:
            return kept[0]
        return type(pref)(tuple(kept))
    if isinstance(pref, DualPreference):
        pruned = prune_constant(pref.base, fixed)
        if pruned is None:
            return None
        return pref if pruned is pref.base else DualPreference(pruned)
    # Other constructors (scores, sums, unions) entangle their attributes;
    # partial pruning there is not obviously sound, so leave them alone.
    return pref


# -- the plan rules -----------------------------------------------------------------


@dataclass
class RewriteContext:
    """Planner facts the rules may consult, plus trace bookkeeping."""

    forced_algorithm: Any = None
    backend: str = "auto"
    cardinality: int = 0
    #: Table statistics of the planned relation (a
    #: :class:`repro.relations.stats.TableStats`), for rules that re-run
    #: the cost-based backend choice on a rewritten term.
    stats: Any = None
    #: Explicit partition count of a backend="parallel" hint, if any.
    partitions: int | None = None
    #: Integrity constraints proved for the planned relation (a
    #: :class:`repro.analysis.constraints.ConstraintSet`: declared schema
    #: constraints plus statistics-derived keys/constants/bounds).  The
    #: semantic rules (winnow_to_sort, remove_redundant_winnow) only fire
    #: when this is populated.
    constraints: Any = None
    noted: set = field(default_factory=set)


def _head(node: PlanNode) -> str:
    """The node's own explain line (no children) — trace vocabulary."""
    return node.lines()[0].strip()


def _replace(node: Any, **changes: Any) -> Any:
    """`dataclasses.replace` behind an Any seam: every plan node is a
    dataclass, but callers hold them as PlanNode."""
    return dataclasses.replace(node, **changes)


def _quality_predicate(
    pref: Preference, condition: QualityCondition
) -> Callable[[Row], bool]:
    def matches(row: Row) -> bool:
        return condition.matches(pref, row)

    return matches


def _winnow_pref(node: PlanNode) -> Preference:
    """The preference a winnow node evaluates (stage composition for
    cascades — Proposition 11 makes the cascade equal to the original
    prioritization, so rigidity w.r.t. the composition is what counts)."""
    if isinstance(node, Cascade):
        prefs = tuple(pref for pref, _ in node.stages)
        return prefs[0] if len(prefs) == 1 else PrioritizedPreference(prefs)
    return node.pref


def _rule_push_select(
    node: PlanNode, ctx: RewriteContext
) -> tuple[PlanNode, str, str] | None:
    """σ over ω -> ω over σ for rigid WHERE conjuncts."""
    if not isinstance(node, HardSelect):
        return None
    winnow = node.child
    if not isinstance(winnow, _WINNOWS):
        return None
    # The builder only lifts conjuncts it certified rigid, but rewrite_plan
    # is callable on any tree — re-verify against this winnow's own term so
    # an unsound σ/ω swap degrades into a skipped optimization instead.
    if node.ast is None or not is_rigid(node.ast, _winnow_pref(winnow)):
        return None
    pushed_select = HardSelect(winnow.child, node.predicate, node.label, node.ast)
    pushed = _replace(winnow, child=pushed_select)
    return (
        pushed,
        f"{_head(node)} over {_head(winnow)}",
        f"{_head(winnow)} over {_head(node)}",
    )


def _rule_push_into_storage(
    node: PlanNode, ctx: RewriteContext
) -> tuple[PlanNode, str, str] | None:
    """σ directly over a storage scan runs as SQL inside the backend.

    This is the second leg of the paper's plug-and-go story: conjuncts
    that ``push_select_below_winnow`` proved rigid land on top of the
    :class:`StorageScan` leaf, and this rule absorbs them — one at a
    time, innermost first — into the backend's parameterized prefilter,
    provided the conjunct stays inside the SQL/Python-equivalent
    fragment (:func:`repro.storage.pushdown.pushable_where`).
    """
    if not isinstance(node, HardSelect):
        return None
    scan = node.child
    if not isinstance(scan, StorageScan) or scan.backend is None:
        return None
    if node.ast is None:
        return None
    from repro.storage.pushdown import pushable_where

    if not pushable_where(node.ast, scan.relation.schema):
        return None
    try:
        absorbed = scan.absorb((node.predicate, node.label, node.ast))
    except Exception:
        return None  # mirror vanished between planning and rewriting
    return (
        absorbed,
        f"{_head(node)} over {_head(scan)}",
        f"storage prefilter [{node.label}]",
    )


def _quality_ast(pref: Preference, condition: QualityCondition) -> Any:
    """A hard-expression equivalent of a rigid DISTANCE bound, or None.

    ``DISTANCE(A) <= d`` under the single certified ``BETWEEN(A, [low,
    up])`` base is exactly ``low - d <= A <= up + d``, so it gets a
    ``HardBetween`` AST and thereby becomes eligible for
    ``push_select_into_storage``.  Only inclusive bounds over plain
    finite numbers translate (HardBetween is inclusive; negative or NaN
    bounds have no interval form); everything else keeps ast=None and
    simply stays a Python prefilter.
    """
    if condition.kind != "distance" or condition.op != "<=":
        return None
    bases = base_preferences_by_attribute(pref).get(condition.attribute, [])
    matching = [b for b in bases if isinstance(b, BetweenPreference)]
    if len(matching) != 1:
        return None
    base = matching[0]
    bound = condition.bound
    values = (base.low, base.up, bound)
    if not all(isinstance(v, (int, float)) and v == v for v in values):
        return None
    if isinstance(bound, bool) or bound < 0:
        return None
    from repro.psql.ast import HardBetween

    return HardBetween(condition.attribute, base.low - bound,
                       base.up + bound)


def _rule_push_quality(
    node: PlanNode, ctx: RewriteContext
) -> tuple[PlanNode, str, str] | None:
    """BUT ONLY conditions that improve under dominance become prefilters."""
    if not isinstance(node, ButOnly):
        return None
    winnow = node.child
    if not isinstance(winnow, (PreferenceSelect, ColumnarPreferenceSelect, Cascade)):
        return None
    pushable = [c for c in node.conditions if quality_rigid(c, node.pref)]
    if not pushable:
        return None
    rest = tuple(c for c in node.conditions if c not in pushable)
    inner: PlanNode = winnow.child
    for condition in pushable:
        inner = HardSelect(
            inner,
            _quality_predicate(node.pref, condition),
            label=f"BUT ONLY {condition}",
            ast=_quality_ast(node.pref, condition),
        )
    new_winnow = _replace(winnow, child=inner)
    new_node: PlanNode = (
        _replace(node, child=new_winnow, conditions=rest) if rest else new_winnow
    )
    labels = " AND ".join(str(c) for c in pushable)
    return (
        new_node,
        f"ButOnly[{labels}] over {_head(winnow)}",
        f"{_head(winnow)} over HardSelect[BUT ONLY {labels}]",
    )


def _rule_prune_constant(
    node: PlanNode, ctx: RewriteContext
) -> tuple[PlanNode, str, str] | None:
    """Drop preference components constant on the winnow's filtered input."""
    if ctx.forced_algorithm is not None:
        return None  # a forced engine may not accept the pruned term
    if not isinstance(node, (PreferenceSelect, ColumnarPreferenceSelect)):
        return None
    fixed: frozenset[str] = frozenset()
    below = node.child
    while isinstance(below, HardSelect):
        if below.ast is not None:
            fixed |= fixed_attributes(below.ast)
        below = below.child
    if isinstance(below, StorageScan):
        for _, _, ast in below.conjuncts:
            fixed |= fixed_attributes(ast)
    if not fixed:
        return None
    pruned = prune_constant(node.pref, fixed)
    if pruned is None:
        return (
            node.child,
            _head(node),
            f"(identity: preference constant over {sorted(fixed)})",
        )
    if pruned.signature == node.pref.signature:
        return None
    from repro.query.optimizer import choose_algorithm, choose_backend

    try:
        # Re-run backend choice under the caller's own hint: a forced
        # backend("columnar") must survive pruning.
        choice = choose_backend(
            pruned, ctx.cardinality, ctx.backend, stats=ctx.stats,
            partitions=ctx.partitions,
        )
    except ValueError:
        # The pruned term would lose its (user-forced) columnar form;
        # honoring the hint beats the pruning win, so leave the node be.
        return None
    new_node: PlanNode
    if choice.columnar:
        if isinstance(node, ColumnarPreferenceSelect):
            new_node = _replace(
                node, pref=pruned, partitions=choice.partitions, cost=choice
            )
        else:
            new_node = ColumnarPreferenceSelect(
                node.child, pruned, partitions=choice.partitions, cost=choice
            )
    else:
        new_node = PreferenceSelect(
            node.child, pruned, algorithm=choose_algorithm(pruned), cost=choice
        )
    return new_node, _head(node), _head(new_node)


def cascade_stages(
    pref: Preference,
) -> tuple[tuple[Preference, str], ...] | None:
    """Split ``P1 & ... & Pn`` into Proposition-11 cascade stages.

    Every stage except the last must be a (statically known) chain; the
    remaining suffix becomes one final stage.  Returns None when the head
    is not a chain (no cascade advantage).
    """
    from repro.query.optimizer import choose_algorithm

    if not isinstance(pref, PrioritizedPreference):
        return None
    children = list(pref.children)
    stages: list[tuple[Preference, str]] = []
    while len(children) > 1 and children[0].is_chain() is True:
        head = children.pop(0)
        stages.append((head, choose_algorithm(head)))
    if not stages:
        return None
    rest: Preference
    rest = children[0] if len(children) == 1 else PrioritizedPreference(tuple(children))
    stages.append((rest, choose_algorithm(rest)))
    return tuple(stages)


def _rule_split_prio(
    node: PlanNode, ctx: RewriteContext
) -> tuple[PlanNode, str, str] | None:
    """Prioritization with chain head -> winnow cascade (Proposition 11)."""
    if ctx.forced_algorithm is not None:
        return None
    if not isinstance(node, PreferenceSelect):
        return None
    stages = cascade_stages(node.pref)
    if stages is None:
        return None
    cascade = Cascade(node.child, stages)
    return cascade, _head(node), _head(cascade)


def _rule_decompose_pareto(
    node: PlanNode, ctx: RewriteContext
) -> tuple[PlanNode, str, str] | None:
    """Record Pareto arms decomposed into composite skyline axes.

    The capability lives in the engines (``skyline_axes`` /
    ``columnar_axes`` accept prioritizations of disjoint chains as one
    lexicographic axis per arm); this rule surfaces in the trace *that* a
    plan's Pareto went vectorized only because its compound arms
    decomposed.  The node is already targeted correctly by the builder,
    so the rewrite is a certification, not a structural change.
    """
    if not isinstance(node, (PreferenceSelect, ColumnarPreferenceSelect)):
        return None
    pref = node.pref
    if not isinstance(pref, ParetoPreference):
        return None
    composite = [c for c in pref.children if len(c.attributes) > 1]
    if not composite:
        return None
    from repro.query.algorithms import skyline_axes

    if skyline_axes(pref) is None:
        return None
    arms = ", ".join(repr(c) for c in composite)
    return (
        node,
        f"PreferenceSelect[{pref!r}]",
        f"vector skyline with composite axes for {arms}",
    )


def _input_bound(node: PlanNode) -> float:
    """A static upper bound on the rows a subtree can produce."""
    if isinstance(node, Scan):
        return len(node.relation)
    if isinstance(node, StorageScan):
        # Prefilters only shrink: the snapshot size bounds the output.
        return len(node.relation)
    if isinstance(node, HardSelect):
        return _input_bound(node.child)
    return float("inf")


def _rule_drop_trivial(
    node: PlanNode, ctx: RewriteContext
) -> tuple[PlanNode, str, str] | None:
    """Winnows that cannot discard anything are the identity."""
    if not isinstance(node, _WINNOWS):
        return None
    anti = not isinstance(node, Cascade) and isinstance(node.pref, AntiChain)
    if anti:
        reason = "preference is an anti-chain (ranks nothing)"
    else:
        bound = _input_bound(node.child)
        if bound > 1:
            return None
        reason = f"input has at most {int(bound)} row(s)"
    return node.child, _head(node), f"(identity: {reason})"


def _fixed_below(node: PlanNode) -> frozenset[str]:
    """Attributes pinned to constants by equality selections below a winnow."""
    fixed: frozenset[str] = frozenset()
    below = node.child
    while isinstance(below, HardSelect):
        if below.ast is not None:
            fixed |= fixed_attributes(below.ast)
        below = below.child
    if isinstance(below, StorageScan):
        for _, _, ast in below.conjuncts:
            fixed |= fixed_attributes(ast)
    return fixed


def _rule_remove_redundant(
    node: PlanNode, ctx: RewriteContext
) -> tuple[PlanNode, str, str] | None:
    """Constraint-proved identity winnows disappear (Chomicki cs/0402003).

    Both proofs are hereditary under selection (keys, constants and
    bounds survive on any row subset), so firing below WHERE stacks is
    sound.
    """
    if ctx.forced_algorithm is not None:
        return None
    constraints = ctx.constraints
    if not constraints:
        return None
    if not isinstance(node, _WINNOWS):
        return None
    from repro.analysis.semantics import semantic_prune

    pref = _winnow_pref(node)
    pruned, notes = semantic_prune(pref, constraints)
    if pruned is None:
        return (
            node.child,
            _head(node),
            f"(identity: preference indifferent; {'; '.join(notes)})",
        )
    fixed = _fixed_below(node)
    if fixed:
        key = constraints.key_within(fixed)
        if key is not None:
            return (
                node.child,
                _head(node),
                f"(identity: equality on {key.describe()} [{key.source}] "
                "bounds the input to one tuple)",
            )
    return None


def _rule_winnow_to_sort(
    node: PlanNode, ctx: RewriteContext
) -> tuple[PlanNode, str, str] | None:
    """Weak order under constraints ⇒ ORDER BY + first group."""
    if ctx.forced_algorithm is not None:
        return None
    if ctx.backend in ("columnar", "parallel"):
        return None  # honor the caller's explicit engine hint
    constraints = ctx.constraints
    if not constraints:
        return None
    if not isinstance(node, (PreferenceSelect, ColumnarPreferenceSelect)):
        return None
    from repro.analysis.semantics import weak_order_reduction

    reduction = weak_order_reduction(node.pref, constraints)
    if reduction is None or not (reduction.changed or reduction.singleton):
        return None
    provenance = "; ".join(reduction.provenance)
    if not reduction.changed:
        # The planner's algorithm for a weak order is already sort-based;
        # certify (trace-only) that a key makes its first group one tuple.
        return (
            node,
            _head(node),
            f"sorted one-pass evaluation, best-matches set is a single "
            f"tuple ({provenance})",
        )
    new_node = SortedWinnow(
        node.child, reduction.pref,
        constraint=provenance, singleton=reduction.singleton,
    )
    return new_node, _head(node), _head(new_node)


#: Rule order: selections move first, terms specialize, trivial winnows
#: evaporate (cheap structural identities keep their traditional trace
#: names), then the semantic (constraint-driven) rules fire, then chains
#: cascade.  The driver runs the list to fixpoint either way.
PLAN_RULES: tuple[tuple[str, Callable[..., Any]], ...] = (
    ("push_select_below_winnow", _rule_push_select),
    ("push_select_below_winnow", _rule_push_quality),
    ("push_select_into_storage", _rule_push_into_storage),
    ("prune_constant_pref", _rule_prune_constant),
    ("drop_trivial_winnow", _rule_drop_trivial),
    ("remove_redundant_winnow", _rule_remove_redundant),
    # winnow_to_sort must see prioritizations whole (its key-in-chain-head
    # proof discharges *all* later stages at once), so it runs before
    # split_prio gets a chance to cascade them.
    ("winnow_to_sort", _rule_winnow_to_sort),
    ("split_prio", _rule_split_prio),
    ("decompose_pareto", _rule_decompose_pareto),
)

_MAX_PASSES = 32


def rewrite_plan(
    root: PlanNode, ctx: RewriteContext | None = None
) -> tuple[PlanNode, list[RewriteStep]]:
    """Apply the plan rules to fixpoint; return the new root and trace."""
    if ctx is None:
        ctx = RewriteContext()
    trace: list[RewriteStep] = []
    for _ in range(_MAX_PASSES):
        root, changed = _rewrite_node(root, ctx, trace)
        if not changed:
            break
    return root, trace


def _rewrite_node(
    node: PlanNode, ctx: RewriteContext, trace: list[RewriteStep]
) -> tuple[PlanNode, bool]:
    changed = False
    progress = True
    while progress:
        progress = False
        for name, rule in PLAN_RULES:
            result = rule(node, ctx)
            if result is None:
                continue
            new_node, before, after = result
            if new_node is node:
                # Certification-only rule: record once, change nothing.
                key = (name, before, after)
                if key not in ctx.noted:
                    ctx.noted.add(key)
                    trace.append((name, before, after))
                continue
            trace.append((name, before, after))
            node = new_node
            progress = True
            changed = True
            break
    child = getattr(node, "child", None)
    if isinstance(child, PlanNode):
        new_child, child_changed = _rewrite_node(child, ctx, trace)
        if child_changed:
            node = _replace(node, child=new_child)
            changed = True
    return node, changed
