"""Preference query evaluation under the BMO model (Section 5).

Public surface:

* :class:`~repro.query.api.PreferenceQuery` — the fluent, lazily-planned
  query builder every front end funnels through (start one with
  ``Session(catalog).query(name)`` or ``PreferenceQuery.over(rows)``),
* :func:`~repro.query.bmo.winnow` / :func:`~repro.query.bmo.winnow_groupby`
  — the engine-level operators ``sigma[P](R)`` and
  ``sigma[P groupby A](R)`` (the historical ``bmo`` / ``bmo_groupby`` /
  ``top_k`` helpers remain as deprecated shims),
* :mod:`repro.query.algorithms` — naive / BNL / SFS / 2-d sweep / divide &
  conquer / sort-based engines,
* :mod:`repro.query.decomposition` — Propositions 8-12 as executable
  evaluation strategies,
* :mod:`repro.query.topk` — the ranked (k-best) query model with a
  threshold algorithm,
* :mod:`repro.query.quality` — LEVEL / DISTANCE and BUT ONLY,
* :mod:`repro.query.optimizer` — algebraic simplification + strategy
  choice + EXPLAIN.
"""

from repro.query.algorithms import (
    ALGORITHMS,
    ComparisonCounter,
    block_nested_loop,
    compatible_sort_key,
    divide_and_conquer,
    naive_nested_loop,
    skyline_axes,
    sort_based_maxima,
    sort_filter_skyline,
    two_d_sweep,
)
from repro.query.api import PreferenceQuery
from repro.query.bmo import (
    bmo,
    bmo_groupby,
    is_dream,
    perfect_matches,
    result_size,
    winnow,
    winnow_groupby,
)
from repro.query.decomposition import (
    better_than_in,
    eval_by_decomposition,
    eval_intersection,
    eval_pareto_decomposition,
    eval_prioritized_cascade,
    eval_prioritized_grouping,
    eval_union,
    nmax_projections,
    yy_set,
)
from repro.query.incremental import BMODelta, IncrementalBMO, merge_deltas
from repro.query.optimizer import choose_algorithm, execute, explain, plan
from repro.query.quality import (
    QualityCondition,
    but_only,
    distance_of,
    explain_quality,
    level_of,
)
from repro.query.topk import ThresholdStats, k_best, threshold_topk, top_k

__all__ = [
    "ALGORITHMS",
    "BMODelta",
    "ComparisonCounter",
    "IncrementalBMO",
    "PreferenceQuery",
    "QualityCondition",
    "ThresholdStats",
    "better_than_in",
    "block_nested_loop",
    "bmo",
    "bmo_groupby",
    "but_only",
    "choose_algorithm",
    "compatible_sort_key",
    "distance_of",
    "divide_and_conquer",
    "eval_by_decomposition",
    "eval_intersection",
    "eval_pareto_decomposition",
    "eval_prioritized_cascade",
    "eval_prioritized_grouping",
    "eval_union",
    "execute",
    "explain",
    "explain_quality",
    "is_dream",
    "k_best",
    "level_of",
    "merge_deltas",
    "naive_nested_loop",
    "nmax_projections",
    "perfect_matches",
    "plan",
    "result_size",
    "skyline_axes",
    "sort_based_maxima",
    "sort_filter_skyline",
    "threshold_topk",
    "top_k",
    "two_d_sweep",
    "winnow",
    "winnow_groupby",
    "yy_set",
]
