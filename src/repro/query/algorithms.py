"""Maxima algorithms: the engines behind BMO queries (Sections 5-6).

The paper notes the naive approach needs O(n^2) better-than tests and points
at the skyline literature ([KLP75], [BKS01], [TEO01]) for efficient
evaluation.  This module implements that landscape:

* :func:`naive_nested_loop` — the declarative definition, verbatim,
* :func:`block_nested_loop` — BNL with an elimination window ([BKS01]);
  correct for *any* strict partial order,
* :func:`sort_filter_skyline` — SFS: presort by a dominance-compatible key,
  then a grow-only window,
* :func:`two_d_sweep` — the O(n log n) two-dimensional special case,
* :func:`divide_and_conquer` — maxima of vector sets after [KLP75],
* :func:`sort_based_maxima` — one-pass evaluation for SCORE preferences.

Two correctness subtleties the implementations honour:

1. Pareto equality is *projection* equality, not score equality.  AROUND(0)
   scores -5 and 5 identically, yet (-5) and (5) are unranked — so a Pareto
   preference over AROUND children is **not** a skyline over score vectors
   (Example 2 of the paper depends on this).  Vector algorithms therefore
   apply only when every child is a chain whose score is injective
   (LOWEST/HIGHEST and friends); :func:`skyline_axes` decides.
2. All algorithms deduplicate by projection first and fan results back out
   to tuples, because BMO keeps every tuple whose projection is maximal.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.base_nonnumerical import ExplicitPreference, LayeredPreference
from repro.core.base_numerical import ScorePreference
from repro.core.constructors import (
    DisjointUnionPreference,
    DualPreference,
    IntersectionPreference,
    LinearSumPreference,
    ParetoPreference,
    PrioritizedPreference,
)
from repro.core.preference import AntiChain, ChainPreference, Preference, Row

#: Registry of row-level maxima algorithms by name (filled at module end).
#: The columnar engine (:mod:`repro.engine.columnar`) registers its
#: vectorized kernels here too, as ``"vsfs"`` and ``"vbnl"``.
ALGORITHMS: dict[str, Callable[[Preference, list[Row]], list[Row]]] = {}


class ComparisonCounter:
    """Counts better-than tests — the unit of the paper's O(n^2) claim."""

    def __init__(self) -> None:
        self.comparisons = 0

    def wrap(self, pref: Preference) -> Preference:
        counter = self

        class _Counting(Preference):
            def __init__(self) -> None:
                super().__init__(pref.attributes, pref.domain)

            @property
            def signature(self) -> tuple:
                return ("counting", pref.signature)

            def _lt(self, x: Row, y: Row) -> bool:
                counter.comparisons += 1
                return pref._lt(x, y)

        return _Counting()


def _distinct_projections(
    pref: Preference, rows: Sequence[Row]
) -> tuple[list[Row], dict[tuple, list[int]]]:
    """Distinct projection representatives plus projection -> row indices."""
    attrs = pref.attributes
    reps: list[Row] = []
    members: dict[tuple, list[int]] = {}
    for i, row in enumerate(rows):
        key = tuple(row[a] for a in attrs)
        if key not in members:
            members[key] = []
            reps.append(row)
        members[key].append(i)
    return reps, members


def _fan_out(
    pref: Preference,
    rows: Sequence[Row],
    members: dict[tuple, list[int]],
    maximal_reps: Sequence[Row],
) -> list[Row]:
    """Expand maximal projections back to all carrying tuples, in row order."""
    attrs = pref.attributes
    max_keys = {tuple(r[a] for a in attrs) for r in maximal_reps}
    picked = sorted(i for key in max_keys for i in members[key])
    return [rows[i] for i in picked]


# -- the declarative reference ----------------------------------------------------

def naive_nested_loop(pref: Preference, rows: list[Row]) -> list[Row]:
    """Definition 15 executed literally: all-pairs better-than tests, O(n^2)."""
    reps, members = _distinct_projections(pref, rows)
    maximal = [
        x
        for i, x in enumerate(reps)
        if not any(i != j and pref._lt(x, y) for j, y in enumerate(reps))
    ]
    return _fan_out(pref, rows, members, maximal)


# -- block-nested-loops -------------------------------------------------------------

def block_nested_loop(pref: Preference, rows: list[Row]) -> list[Row]:
    """BNL with an in-memory window ([BKS01], simplified to one block).

    Each candidate is compared against the window; dominated candidates are
    dropped, and window members dominated by the candidate are evicted.
    Works for every strict partial order because only witnessed dominance
    ever removes a value.
    """
    reps, members = _distinct_projections(pref, rows)
    window: list[Row] = []
    for cand in reps:
        dominated = False
        survivors: list[Row] = []
        for w in window:
            if pref._lt(cand, w):
                dominated = True
                survivors = window  # cand dies; window unchanged
                break
            if not pref._lt(w, cand):
                survivors.append(w)
        if dominated:
            continue
        survivors.append(cand)
        window = survivors
    return _fan_out(pref, rows, members, window)


# -- sort-filter skyline ---------------------------------------------------------------

class _Reversed:
    """Order-reversing wrapper so duals of arbitrary ordered keys sort.

    Implements the full comparison protocol: the divide & conquer median
    split compares axis values with ``>=`` / ``<=``, not only ``<``.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __le__(self, other: "_Reversed") -> bool:
        return not (self.value < other.value)

    def __gt__(self, other: "_Reversed") -> bool:
        return self.value < other.value

    def __ge__(self, other: "_Reversed") -> bool:
        return not (other.value < self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash(("_Reversed", self.value))

    def __repr__(self) -> str:
        return f"_Reversed({self.value!r})"


def compatible_sort_key(pref: Preference) -> Callable[[Row], Any] | None:
    """A key with ``x <_P y  =>  key(x) < key(y)``, or None if unknown.

    Such a key is a linear extension generator: sorting descending by it
    guarantees no row is dominated by a later row, which is exactly what
    :func:`sort_filter_skyline` needs.  Built structurally:

    * SCORE family: the score itself,
    * layered / EXPLICIT: negated level (level 1 is best),
    * Pareto / prioritized / intersection: tuple of child keys
      (dominance makes every component <=, some <, hence lex-smaller),
    * dual: order-reversed child key,
    * anti-chain: constant,
    * linear sum: (which-world flag, child key),
    * disjoint union: no general construction -> None.
    """
    if isinstance(pref, ScorePreference):
        return lambda row: pref.score(row)
    if isinstance(pref, LayeredPreference):
        worst = pref.max_level() + 1
        attr = pref.attribute

        def layered_key(row: Row) -> int:
            level = pref.level(row[attr])
            return -(level if level is not None else worst)

        return layered_key
    if isinstance(pref, ExplicitPreference):
        worst = pref.max_level() + 1
        attr = pref.attribute

        def explicit_key(row: Row) -> int:
            level = pref.level(row[attr])
            return -(level if level is not None else worst)

        return explicit_key
    if isinstance(pref, ChainPreference):
        return lambda row: pref.key(row[pref.attribute])
    if isinstance(pref, AntiChain):
        return lambda row: 0
    if isinstance(pref, DualPreference):
        inner = compatible_sort_key(pref.base)
        if inner is None:
            return None
        return lambda row: _Reversed(inner(row))
    if isinstance(
        pref, (ParetoPreference, PrioritizedPreference, IntersectionPreference)
    ):
        child_keys = [compatible_sort_key(c) for c in pref.children]
        if any(k is None for k in child_keys):
            return None
        return lambda row: tuple(k(row) for k in child_keys)  # type: ignore[misc]
    if isinstance(pref, LinearSumPreference):
        k1 = compatible_sort_key(pref.first)
        k2 = compatible_sort_key(pref.second)
        if k1 is None or k2 is None:
            return None
        attr = pref.attribute
        a1 = pref.first.attributes[0]
        a2 = pref.second.attributes[0]

        def ls_key(row: Row) -> tuple:
            v = row[attr]
            if pref.first.domain is not None and pref.first.domain.contains(v):
                return (1, k1({a1: v}))
            return (0, k2({a2: v}))

        return ls_key
    if isinstance(pref, DisjointUnionPreference):
        return None
    return None


def sort_filter_skyline(
    pref: Preference,
    rows: list[Row],
    key: Callable[[Row], Any] | None = None,
) -> list[Row]:
    """SFS: presort by a compatible key, then a grow-only window.

    After the descending presort no later row can dominate an earlier one,
    so accepted window members are final — each candidate needs only
    one-directional tests against the window.
    """
    if key is None:
        key = compatible_sort_key(pref)
        if key is None:
            raise ValueError(
                f"no dominance-compatible sort key for {pref!r}; "
                "use block_nested_loop instead"
            )
    reps, members = _distinct_projections(pref, rows)
    ordered = sorted(reps, key=key, reverse=True)
    window: list[Row] = []
    for cand in ordered:
        if not any(pref._lt(cand, w) for w in window):
            window.append(cand)
    return _fan_out(pref, rows, members, window)


# -- vector skylines (Pareto of injective chains) -----------------------------------

def skyline_axes(pref: Preference) -> list[Callable[[Row], Any]] | None:
    """Per-dimension "bigger is better" axes, when Pareto = vector skyline.

    Valid only when every Pareto child is a chain with an injective score on
    its attribute (LOWEST, HIGHEST, their duals, ChainPreference): then score
    equality coincides with projection equality and vector dominance is
    exactly the Pareto order.  AROUND/BETWEEN/SCORE children are refused —
    their scores identify distinct values (see module docstring).
    """
    if not isinstance(pref, ParetoPreference):
        return None
    axes: list[Callable[[Row], Any]] = []
    for child in pref.children:
        axis = chain_axis(child)
        if axis is None:
            return None
        axes.append(axis)
    return axes


def chain_axis(child: Preference) -> Callable[[Row], Any] | None:
    """The "bigger is better" row-axis of one injective chain, or None.

    Public seam shared with the columnar engine's composite-arm support
    (:func:`repro.engine.columnar.columnar_axes` builds its value-level
    axes on top of these row-level ones).
    """
    from repro.core.base_numerical import HighestPreference, LowestPreference

    if isinstance(child, HighestPreference):
        attr = child.attribute
        return lambda row: row[attr]
    if isinstance(child, LowestPreference):
        attr = child.attribute
        return lambda row: _Reversed(row[attr])
    if isinstance(child, ChainPreference):
        return lambda row: child.key(row[child.attribute])
    if isinstance(child, DualPreference):
        inner = chain_axis(child.base)
        if inner is None:
            return None
        return lambda row: _Reversed(inner(row))
    if isinstance(child, PrioritizedPreference) and child.is_chain() is True:
        # Proposition 3h: prioritization of chains over pairwise disjoint
        # attributes is itself a chain — its order is lexicographic, so a
        # tuple of the per-stage axis values is an injective axis for the
        # whole arm (tuple equality is projection equality because every
        # component axis is injective on its own attribute).  This is what
        # lets the decompose_pareto rule evaluate Pareto terms with
        # compound arms as vector skylines: one composite axis per arm.
        stage_axes = [chain_axis(c) for c in child.children]
        if any(axis is None for axis in stage_axes):
            return None
        axes = tuple(stage_axes)
        return lambda row: tuple(axis(row) for axis in axes)  # type: ignore[misc]
    return None


def _vector_dominates(a: tuple, b: tuple) -> bool:
    """All components >=, at least one strictly >."""
    strict = False
    for av, bv in zip(a, b):
        if av == bv:
            continue
        if bv < av:
            strict = True
        else:
            return False
    return strict


def _bnl_vectors(indexed: list[tuple[int, tuple]]) -> list[tuple[int, tuple]]:
    window: list[tuple[int, tuple]] = []
    for item in indexed:
        dominated = False
        survivors = []
        for w in window:
            if _vector_dominates(w[1], item[1]):
                dominated = True
                survivors = window
                break
            if not _vector_dominates(item[1], w[1]):
                survivors.append(w)
        if dominated:
            continue
        survivors.append(item)
        window = survivors
    return window


def divide_and_conquer(
    pref: Preference, rows: list[Row], leaf_size: int = 16
) -> list[Row]:
    """Maxima of a vector set by divide & conquer, after [KLP75]/[BKS01].

    Split at the median of the first axis; the upper half's skyline stands
    on its own (nothing below the median can dominate it), the lower half's
    skyline is filtered against it.  Degenerate splits (all values equal on
    the split axis) strip that axis and recurse on the rest.
    """
    axes = skyline_axes(pref)
    if axes is None:
        raise ValueError(
            f"{pref!r} is not a Pareto preference over injective chains; "
            "divide & conquer does not apply (see skyline_axes)"
        )
    reps, members = _distinct_projections(pref, rows)
    indexed = [
        (i, tuple(axis(row) for axis in axes)) for i, row in enumerate(reps)
    ]
    maximal = _dc_recurse(indexed, leaf_size)
    return _fan_out(pref, rows, members, [reps[i] for i, _ in maximal])


def _dc_recurse(
    indexed: list[tuple[int, tuple]], leaf_size: int
) -> list[tuple[int, tuple]]:
    if len(indexed) <= leaf_size:
        return _bnl_vectors(indexed)
    dims = len(indexed[0][1])
    ordered = sorted(indexed, key=lambda iv: iv[1][0], reverse=True)
    values = [iv[1][0] for iv in ordered]
    if values[0] == values[-1]:
        # Degenerate on this axis: dominance is decided by the rest.
        if dims == 1:
            return indexed  # all equal vectors: mutually unranked, all maximal
        stripped = [(i, v[1:]) for i, v in indexed]
        kept = {i for i, _ in _dc_recurse(stripped, leaf_size)}
        return [iv for iv in indexed if iv[0] in kept]
    # Median split with the tie block on the upper side so B is non-empty
    # and strictly below every A value on axis 0.
    mid = len(ordered) // 2
    pivot = values[mid]
    upper = [iv for iv in ordered if iv[1][0] >= pivot]
    lower = [iv for iv in ordered if iv[1][0] < pivot]
    if not lower:  # pivot is the minimum: shift the boundary above it
        upper = [iv for iv in ordered if iv[1][0] > pivot]
        lower = [iv for iv in ordered if iv[1][0] == pivot]
    sky_upper = _dc_recurse(upper, leaf_size)
    sky_lower = _dc_recurse(lower, leaf_size)
    merged = list(sky_upper)
    for item in sky_lower:
        if not any(_vector_dominates(w[1], item[1]) for w in sky_upper):
            merged.append(item)
    return merged


def two_d_sweep(pref: Preference, rows: list[Row]) -> list[Row]:
    """The classic O(n log n) two-dimensional maxima sweep ([KLP75]).

    Sort descending on axis 0; within the prefix of strictly greater axis-0
    values only the best axis-1 value can dominate, so one running maximum
    suffices.
    """
    axes = skyline_axes(pref)
    if axes is None or len(axes) != 2:
        raise ValueError(
            f"two_d_sweep needs a 2-dimensional Pareto of injective chains, "
            f"got {pref!r}"
        )
    reps, members = _distinct_projections(pref, rows)
    indexed = [
        (i, (axes[0](row), axes[1](row))) for i, row in enumerate(reps)
    ]
    indexed.sort(key=lambda iv: (iv[1][0], iv[1][1]), reverse=True)

    maximal: list[int] = []
    best1_before: Any = None  # max axis-1 over strictly-greater axis-0 groups
    pos = 0
    while pos < len(indexed):
        group_end = pos
        v0 = indexed[pos][1][0]
        while group_end < len(indexed) and indexed[group_end][1][0] == v0:
            group_end += 1
        group = indexed[pos:group_end]
        group_best1 = group[0][1][1]  # sorted desc on axis 1 within the group
        for i, (a0, a1) in group:
            beats_earlier = best1_before is None or best1_before < a1
            best_in_group = not (a1 < group_best1)
            if beats_earlier and best_in_group:
                maximal.append(i)
        if best1_before is None or best1_before < group_best1:
            best1_before = group_best1
        pos = group_end
    return _fan_out(pref, rows, members, [reps[i] for i in maximal])


# -- score-based one-pass evaluation --------------------------------------------------

def sort_based_maxima(pref: Preference, rows: list[Row]) -> list[Row]:
    """One-pass maxima for SCORE preferences: keep the argmax score set.

    For a SCORE preference (which includes AROUND, BETWEEN, LOWEST, HIGHEST
    and rank(F)) the maxima are exactly the rows of maximal score.
    """
    from repro.core.base_numerical import score_function_of

    score = score_function_of(pref)
    if score is None:
        raise ValueError(f"{pref!r} has no score function; use another algorithm")
    reps, members = _distinct_projections(pref, rows)
    if not reps:
        return []
    best = None
    argmax: list[Row] = []
    for row in reps:
        s = score(row)
        if best is None or best < s:
            best, argmax = s, [row]
        elif not (s < best):
            argmax.append(row)
    return _fan_out(pref, rows, members, argmax)


ALGORITHMS.update(
    {
        "naive": naive_nested_loop,
        "bnl": block_nested_loop,
        "sfs": sort_filter_skyline,
        "dc": divide_and_conquer,
        "2d": two_d_sweep,
        "sort": sort_based_maxima,
    }
)
