"""Preference revision without recomputation (Chomicki, cs/0607013).

The paper frames preference engineering as an *iterative* process: users
refine their wishes step by step, and every step today forces a full
re-plan and rescan.  Chomicki's revision results give the algebraic
conditions under which ``sigma[P'](R)`` is computable *from*
``sigma[P](R)`` instead:

* **Order refinement** — when ``<_P`` is contained in ``<_P'``, every
  ``P'``-maximal row is already ``P``-maximal (ascend a ``<_P`` chain to a
  ``sigma[P]`` witness; transitivity of ``<_P'`` finishes), so

  ``sigma[P'](R) = sigma[P'](sigma[P](R))``

  and the revised answer restarts from the *view*.  Prioritized appends
  (``P -> P & Q``, Definition 9: the appended stage only breaks ties) and
  layer appends on the finite constructors (``POS -> POS/POS`` etc.) are
  order refinements.
* **Contraction** — when ``<_P'`` is contained in ``<_P`` (a prioritized
  stage or layer dropped), ``sigma[P](R)`` is a *subset* of the revised
  answer: re-entrants are exactly the previously dominated rows, so the
  revision restarts from the view plus the dominated **frontier**.
* **Pareto extension** (``P -> P (x) Q``) is a user-intent refinement but
  is *not* order-monotone — a ``(x)``-appended component can promote rows
  the old skyline dominated — so it, too, draws from view + frontier.
* Anything else is **incomparable** and falls back to a full recompute.

:func:`classify_revision` decides the class from canonical forms
(:mod:`repro.algebra.rewriter` / :mod:`repro.algebra.equivalence`) plus
the :mod:`repro.analysis` constraint registry (an appended component that
is provably indifferent on the instance makes the revision a no-op), and
:class:`ReviseState` maintains the current BMO set together with a
*bounded* dominated-candidates frontier.  The bound is what keeps the
state view-sized rather than relation-sized; when it overflows the state
records the truncation honestly and later frontier-class revisions fall
back to a full recompute instead of silently returning a subset.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.algebra.equivalence import mentioned_values, order_pairs
from repro.algebra.rewriter import simplify
from repro.core.base_nonnumerical import ExplicitPreference, LayeredPreference
from repro.core.base_numerical import ScorePreference
from repro.core.constructors import (
    DisjointUnionPreference,
    DualPreference,
    IntersectionPreference,
    ParetoPreference,
    PrioritizedPreference,
    RankPreference,
)
from repro.core.preference import AntiChain, Preference, Row
from repro.query.bmo import winnow, winnow_groupby
from repro.query.incremental import BMODelta, _diff
from repro.query.topk import k_best

#: Default bound on the dominated-candidates frontier.  Past this many
#: dominated rows the state stops remembering candidates and frontier-class
#: revisions (contractions, Pareto extensions) recompute from scratch.
DEFAULT_FRONTIER_LIMIT = 4096

#: The proving laws, named once so explain()/docs/tests agree verbatim.
LAW_IDENTITY = (
    "identity: both terms share one structural signature (Definition 13)"
)
LAW_CANONICAL = (
    "canonical form: both terms simplify to one signature under the "
    "algebra laws (Propositions 2-6)"
)
LAW_PROBE_EQUAL = (
    "Definition 13 equivalence, decided exhaustively on the canonical "
    "probe of the finite constructors"
)
LAW_PRIO_APPEND = (
    "Definition 9: x <_P y implies x <_(P & Q) y, so the appended stage "
    "only refines the order and sigma[P'](R) = sigma[P'](sigma[P](R))"
)
LAW_CHAIN_APPEND = (
    "order refinement (probe-proved <_P subset of <_P'): every revised "
    "maximum is an old maximum, so sigma[P'](R) = sigma[P'](sigma[P](R))"
)
LAW_PARETO_EXTEND = (
    "Pareto extension (Definition 8) is not order-monotone: an appended "
    "(x)-component can promote dominated rows, so the revised skyline is "
    "sigma[P'](view + frontier)"
)
LAW_CONTRACTION = (
    "contraction: <_P' subset of <_P, so sigma[P](R) is a subset of "
    "sigma[P'](R); re-entrants are drawn from the dominated frontier"
)
LAW_INDIFFERENT = (
    "semantic no-op: every appended component is indifferent on the "
    "constrained instance, so the revised order equals the old one"
)
LAW_INCOMPARABLE = (
    "no containment between the two orders could be proved; exactness "
    "requires a full recompute"
)


class RevisionError(ValueError):
    """A revision the state cannot answer exactly (truncated frontier and
    no way to reload the base relation)."""


@dataclass(frozen=True)
class Revision:
    """The classification of one preference delta ``P -> P'``.

    ``kind`` is ``equal`` / ``refinement`` / ``contraction`` /
    ``incomparable``; ``shape`` names the syntactic pattern that proved it
    (``prio-append``, ``chain-append``, ``pareto-extend``, ...); ``law``
    is the algebraic law the proof rests on; ``restart`` is the cheapest
    sound restart point: ``none`` (result unchanged), ``view`` (the old
    BMO set alone), ``frontier`` (view + dominated candidates) or ``full``
    (recompute from the base relation).
    """

    kind: str
    shape: str
    law: str
    restart: str
    detail: str = ""

    def describe(self) -> str:
        """The explain() rendering: classification, law, restart point."""
        lines = [
            f"revision: {self.kind} ({self.shape})",
            f"  law: {self.law}",
            f"  restart: {self.restart}",
        ]
        if self.detail:
            lines.append(f"  detail: {self.detail}")
        return "\n".join(lines)


def _callable_identities(pref: Preference) -> tuple[int, ...]:
    """Identities of ad-hoc scoring callables inside a term (mirrors the
    view-key rule: signature-equal lambdas are not semantically equal)."""
    out: list[int] = []
    stack: list[Any] = [pref]
    while stack:
        node = stack.pop()
        if type(node) is RankPreference:
            out.append(id(node.combine))
        elif type(node) is ScorePreference:
            out.append(id(node._f))
        stack.extend(getattr(node, "children", ()) or ())
    return tuple(sorted(out))


def _ident(pref: Preference) -> tuple:
    """Structural identity: signature plus scoring-callable identities."""
    return (pref.signature, _callable_identities(pref))


def _flat(pref: Preference, ctor: type) -> list[Preference]:
    """Flatten an associative accumulation into its stage list."""
    if isinstance(pref, ctor):
        out: list[Preference] = []
        for child in pref.children:
            out.extend(_flat(child, ctor))
        return out
    return [pref]


def _is_prefix(shorter: Sequence[Preference], longer: Sequence[Preference]) -> bool:
    return all(
        _ident(a) == _ident(b) for a, b in zip(shorter, longer)
    )


def _multiset_minus(
    pool: Sequence[Preference], remove: Sequence[Preference]
) -> list[Preference] | None:
    """``pool`` minus ``remove`` as identity multisets, or None if
    ``remove`` is not contained in ``pool``."""
    out = list(pool)
    for target in remove:
        key = _ident(target)
        for i, candidate in enumerate(out):
            if _ident(candidate) == key:
                del out[i]
                break
        else:
            return None
    return out


#: Constructors whose orders are fully determined by finitely many
#: mentioned values (invariant under permuting unmentioned ones), so a
#: probe of mentioned values + two fresh ones decides order containment.
_FINITE_LEAVES = (LayeredPreference, ExplicitPreference, AntiChain)
_FINITE_COMPOUNDS = (
    ParetoPreference,
    PrioritizedPreference,
    IntersectionPreference,
    DisjointUnionPreference,
    DualPreference,
)


def _finitely_probeable(pref: Preference) -> bool:
    if isinstance(pref, _FINITE_LEAVES):
        return True
    if isinstance(pref, _FINITE_COMPOUNDS):
        return all(_finitely_probeable(c) for c in pref.children)
    return False


def _probe_containment(old: Preference, new: Preference) -> str | None:
    """``equal`` / ``refines`` / ``contracts`` by order containment on an
    exhaustive probe, or None when the probe argument does not apply."""
    if len(old.attributes) != 1 or old.attribute_set != new.attribute_set:
        return None
    if not (_finitely_probeable(old) and _finitely_probeable(new)):
        return None
    probe = sorted(
        mentioned_values(old) | mentioned_values(new), key=repr
    ) + ["__other_1__", "__other_2__"]
    pairs_old = order_pairs(old, probe)
    pairs_new = order_pairs(new, probe)
    if pairs_old == pairs_new:
        return "equal"
    if pairs_old < pairs_new:
        return "refines"
    if pairs_new < pairs_old:
        return "contracts"
    return None


def _all_indifferent(
    appended: Sequence[Preference], constraints: Any
) -> str | None:
    """One combined proof when every appended component is indifferent
    under the instance constraints, else None."""
    if constraints is None or not constraints:
        return None
    from repro.analysis.semantics import indifference_proof

    proofs: list[str] = []
    for component in appended:
        proof = indifference_proof(component, constraints)
        if proof is None:
            return None
        proofs.append(proof)
    return "; ".join(proofs)


def classify_revision(
    old: Preference, new: Preference, constraints: Any = None
) -> Revision:
    """Classify the preference delta ``old -> new`` (see module docs).

    ``constraints`` is an optional
    :class:`~repro.analysis.constraints.ConstraintSet` proved for the
    winnow's input; it can upgrade a structural refinement to a semantic
    no-op when every appended component is indifferent on the instance.
    The classifier is *conservative*: a ``view``/``frontier`` restart is
    only claimed when the containment law above proves it, and everything
    unproved is ``incomparable`` (exact, via full recompute).
    """
    for pref, name in ((old, "old"), (new, "new")):
        if not isinstance(pref, Preference):
            raise TypeError(
                f"classify_revision needs Preference terms; {name} is "
                f"{pref!r}"
            )
    if old is new or _ident(old) == _ident(new):
        return Revision("equal", "identity", LAW_IDENTITY, "none")
    old_c, new_c = simplify(old), simplify(new)
    if _ident(old_c) == _ident(new_c):
        return Revision("equal", "canonical", LAW_CANONICAL, "none")

    prio_old = _flat(old_c, PrioritizedPreference)
    prio_new = _flat(new_c, PrioritizedPreference)
    if len(prio_new) > len(prio_old) and _is_prefix(prio_old, prio_new):
        appended = prio_new[len(prio_old):]
        proof = _all_indifferent(appended, constraints)
        if proof is not None:
            return Revision(
                "equal", "prio-append", LAW_INDIFFERENT, "none", proof
            )
        return Revision(
            "refinement", "prio-append", LAW_PRIO_APPEND, "view",
            f"{len(appended)} stage(s) appended",
        )
    if len(prio_new) < len(prio_old) and _is_prefix(prio_new, prio_old):
        return Revision(
            "contraction", "prio-prefix", LAW_CONTRACTION, "frontier",
            f"{len(prio_old) - len(prio_new)} stage(s) dropped",
        )

    pareto_old = _flat(old_c, ParetoPreference)
    pareto_new = _flat(new_c, ParetoPreference)
    if len(pareto_new) != len(pareto_old):
        appended_p = _multiset_minus(pareto_new, pareto_old)
        if appended_p is not None and len(pareto_new) > len(pareto_old):
            proof = _all_indifferent(appended_p, constraints)
            if proof is not None:
                return Revision(
                    "equal", "pareto-extend", LAW_INDIFFERENT, "none", proof
                )
            return Revision(
                "refinement", "pareto-extend", LAW_PARETO_EXTEND,
                "frontier", f"{len(appended_p)} component(s) added",
            )
        dropped_p = _multiset_minus(pareto_old, pareto_new)
        if dropped_p is not None and len(pareto_new) < len(pareto_old):
            return Revision(
                "contraction", "pareto-drop", LAW_CONTRACTION, "frontier",
                f"{len(dropped_p)} component(s) dropped",
            )

    containment = _probe_containment(old_c, new_c)
    if containment == "equal":
        return Revision("equal", "probe", LAW_PROBE_EQUAL, "none")
    if containment == "refines":
        return Revision(
            "refinement", "chain-append", LAW_CHAIN_APPEND, "view"
        )
    if containment == "contracts":
        return Revision(
            "contraction", "layer-drop", LAW_CONTRACTION, "frontier"
        )
    return Revision("incomparable", "unrelated", LAW_INCOMPARABLE, "full")


@dataclass(frozen=True)
class RevisionOutcome:
    """One executed revision step: the classification, the restart
    strategy actually used (``full`` when a fallback fired), the visible
    enter/exit delta, and how many candidate rows were examined."""

    revision: Revision
    strategy: str
    delta: BMODelta
    examined: int


def _row_key(row: Row) -> tuple:
    return tuple(sorted(row.items()))


def _bag_subtract(pool: Iterable[Row], remove: Iterable[Row]) -> list[Row]:
    """Multiset difference ``pool - remove`` (linear, order-preserving)."""
    counts = Counter(_row_key(r) for r in remove)
    out: list[Row] = []
    for row in pool:
        key = _row_key(row)
        if counts.get(key, 0) > 0:
            counts[key] -= 1
        else:
            out.append(dict(row))
    return out


class ReviseState:
    """The current BMO set plus a bounded dominated-candidates frontier.

    Seeded once from the base relation, the state answers every later
    preference revision from its own rows: order refinements re-winnow
    only the view, contractions and Pareto extensions re-winnow view +
    frontier, and only ``incomparable`` deltas (or a truncated frontier)
    pay a full recompute — via the caller-supplied ``reload`` when the
    retained rows no longer cover the relation.  Every fallback is
    recorded in :attr:`stats`, so the speedup claims stay honest.

    Supports the same evaluation shapes as the serving layer: plain
    winnow, ``groupby`` partitioning (the containment laws apply per
    group), and ranked ``top``-k for SCORE terms (where only ``equal``
    deltas avoid recomputation — a revised score function can reorder the
    whole cut).
    """

    def __init__(
        self,
        pref: Preference,
        rows: Iterable[Row] = (),
        *,
        groupby: Sequence[str] | None = None,
        top: int | None = None,
        ties: str = "strict",
        frontier_limit: int = DEFAULT_FRONTIER_LIMIT,
        constraints: Any = None,
    ):
        if top is not None and not isinstance(pref, ScorePreference):
            raise TypeError(
                "ranked revision needs a SCORE preference, got "
                f"{type(pref).__name__}"
            )
        if frontier_limit < 0:
            raise ValueError(
                f"frontier_limit must be non-negative, got {frontier_limit}"
            )
        self.pref = pref
        self.groupby: tuple[str, ...] = tuple(groupby) if groupby else ()
        self.top = top
        self.ties = ties
        self.frontier_limit = frontier_limit
        self.constraints = constraints
        self.truncated = False
        self.stats: dict[str, int] = {
            "revisions": 0,
            "noop": 0,
            "from_view": 0,
            "from_frontier": 0,
            "full_recomputes": 0,
            "truncation_fallbacks": 0,
            "frontier_dropped": 0,
            "rows_examined": 0,
        }
        pool = [dict(r) for r in rows]
        self._view = self._evaluate(pref, pool)
        self._frontier: list[Row] = []
        self._extend_frontier(_bag_subtract(pool, self._view))

    # -- evaluation --------------------------------------------------------------

    def _evaluate(self, pref: Preference, rows: list[Row]) -> list[Row]:
        if self.top is not None:
            return [dict(r) for r in k_best(pref, rows, self.top, self.ties)]
        if self.groupby:
            return [
                dict(r) for r in winnow_groupby(pref, self.groupby, rows)
            ]
        return [dict(r) for r in winnow(pref, rows)]

    def _extend_frontier(self, rows: list[Row]) -> None:
        room = self.frontier_limit - len(self._frontier)
        if len(rows) > room:
            kept = rows[: max(room, 0)]
            self.stats["frontier_dropped"] += len(rows) - len(kept)
            self.truncated = True
            rows = kept
        self._frontier.extend(rows)

    # -- inspection --------------------------------------------------------------

    def result(self) -> list[Row]:
        """The current BMO set (copies)."""
        return [dict(r) for r in self._view]

    def frontier(self) -> list[Row]:
        """The retained dominated candidates (copies)."""
        return [dict(r) for r in self._frontier]

    def __len__(self) -> int:
        return len(self._view)

    def __repr__(self) -> str:
        return (
            f"ReviseState({self.pref!r}, view={len(self._view)}, "
            f"frontier={len(self._frontier)}"
            f"{', truncated' if self.truncated else ''})"
        )

    # -- revision ----------------------------------------------------------------

    def revise(
        self,
        new_pref: Preference,
        reload: Callable[[], Iterable[Row]] | None = None,
    ) -> RevisionOutcome:
        """Move the state to ``new_pref``; returns the executed outcome.

        ``reload`` supplies the base relation for full recomputes; when
        the frontier was never truncated the retained rows *are* the base
        relation (as a bag) and no reload is needed.  Raises
        :class:`RevisionError` if an exact answer would need rows the
        state no longer holds and no ``reload`` was given.
        """
        if self.top is not None and not isinstance(new_pref, ScorePreference):
            raise TypeError(
                "ranked revision needs a SCORE preference, got "
                f"{type(new_pref).__name__}"
            )
        revision = classify_revision(
            self.pref, new_pref, constraints=self.constraints
        )
        strategy = revision.restart
        if self.top is not None and strategy in ("view", "frontier"):
            # Ranked cuts are score-global: containment of the dominance
            # orders says nothing about a revised score's ordering.
            strategy = "full"
        if strategy == "frontier" and self.truncated:
            strategy = "full"
            self.stats["truncation_fallbacks"] += 1

        before = self._view
        if strategy == "none":
            after = before
            delta = BMODelta()
            examined = 0
            self.stats["noop"] += 1
        else:
            reloaded = False
            if strategy == "view":
                pool = [dict(r) for r in before]
                self.stats["from_view"] += 1
            elif strategy == "frontier":
                pool = [dict(r) for r in before] + [
                    dict(r) for r in self._frontier
                ]
                self.stats["from_frontier"] += 1
            else:  # full
                if reload is not None:
                    pool = [dict(r) for r in reload()]
                    reloaded = True
                elif not self.truncated:
                    # view + complete frontier is the base relation as a bag.
                    pool = [dict(r) for r in before] + [
                        dict(r) for r in self._frontier
                    ]
                else:
                    raise RevisionError(
                        "frontier was truncated and no reload was given; "
                        "an exact revision needs the base relation"
                    )
                self.stats["full_recomputes"] += 1
            after = self._evaluate(new_pref, pool)
            delta = _diff(before, after)
            examined = len(pool)
            if strategy == "view":
                # Demoted rows join the frontier; dominated rows already
                # there stay dominated under a refinement.
                self._extend_frontier(_bag_subtract(pool, after))
            else:
                # The pool covered every retained (or reloaded) row, so
                # the frontier is rebuilt from scratch — complete again
                # after a reload, still truncated otherwise if it was.
                if reloaded:
                    self.truncated = False
                self._frontier = []
                self._extend_frontier(_bag_subtract(pool, after))

        self.pref = new_pref
        self._view = after
        self.stats["revisions"] += 1
        self.stats["rows_examined"] += examined
        return RevisionOutcome(revision, strategy, delta, examined)
