"""The BMO ("Best Matches Only") query model (Section 5.1).

``sigma[P](R)`` retrieves every tuple of the database set ``R`` whose
projection is maximal in the database preference ``P_R`` (Definition 15) —
all best matches, and only those.  Query relaxation is implicit: when no
perfect match exists the maxima are the closest available compromises, and
non-maximal tuples are discarded on the fly.

Functions here accept either a :class:`~repro.relations.relation.Relation`
or a plain list of dict rows, and return the same shape they were given.

:func:`winnow` / :func:`winnow_groupby` are the engine-level operators used
by plan nodes; the historical :func:`bmo` / :func:`bmo_groupby` helpers are
deprecated shims that route through the unified
:class:`~repro.query.api.PreferenceQuery` pipeline.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Sequence

from repro.core.base_nonnumerical import ExplicitPreference, LayeredPreference
from repro.core.base_numerical import BetweenPreference, ScorePreference
from repro.core.constructors import (
    DualPreference,
    IntersectionPreference,
    ParetoPreference,
    PrioritizedPreference,
)
from repro.core.preference import AntiChain, Preference, Row
from repro.query.algorithms import ALGORITHMS, block_nested_loop
from repro.relations.relation import Relation


def _unpack(data: Relation | Sequence[Row]) -> tuple[list[Row], Relation | None]:
    if isinstance(data, Relation):
        return data.rows(), data
    return [dict(r) for r in data], None


def _repack(rows: list[Row], template: Relation | None) -> Any:
    if template is None:
        return rows
    return Relation(template.name, template.schema, rows, validate=False)


def _resolve_engine(
    algorithm: str | Callable[[Preference, list[Row]], list[Row]],
) -> Callable[[Preference, list[Row]], list[Row]]:
    if callable(algorithm):
        return algorithm
    try:
        return ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}"
        ) from None


def winnow(
    pref: Preference,
    data: Relation | Sequence[Row],
    algorithm: str | Callable[[Preference, list[Row]], list[Row]] = "bnl",
) -> Any:
    """``sigma[P](R)``: all tuples whose projection is maximal in ``P_R``.

    The engine-level winnow operator (Chomicki's name for the paper's BMO
    selection).  ``algorithm`` picks an engine from
    :data:`repro.query.algorithms.ALGORITHMS` ("naive", "bnl", "sfs", "dc",
    "2d", "sort", plus the columnar "vsfs"/"vbnl") or is a callable; "bnl"
    is the default because it is correct for every strict partial order.  Use
    :class:`~repro.query.api.PreferenceQuery` (or
    :func:`repro.query.optimizer.execute`) for automatic selection.
    """
    rows, template = _unpack(data)
    engine = _resolve_engine(algorithm)
    return _repack(engine(pref, rows), template)


def winnow_groupby(
    pref: Preference,
    by: Sequence[str],
    data: Relation | Sequence[Row],
    algorithm: str | Callable[[Preference, list[Row]], list[Row]] = "bnl",
) -> Any:
    """``sigma[P groupby A](R)  :=  sigma[A<-> & P](R)`` (Definition 16).

    Operationally: partition ``R`` by equal ``A``-values and evaluate
    ``sigma[P]`` inside each group — the paper derives this from the
    interplay of grouping and anti-chains.
    """
    rows, template = _unpack(data)
    names = tuple(by)
    groups: dict[tuple, list[Row]] = {}
    order: list[tuple] = []
    for row in rows:
        key = tuple(row[n] for n in names)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    engine = _resolve_engine(algorithm)
    out: list[Row] = []
    for key in order:
        out.extend(engine(pref, groups[key]))
    return _repack(out, template)


# -- deprecated functional entry points ----------------------------------------------

def bmo(
    pref: Preference,
    data: Relation | Sequence[Row],
    algorithm: str | Callable[[Preference, list[Row]], list[Row]] = "bnl",
) -> Any:
    """Deprecated shim for ``sigma[P](R)``.

    Use ``PreferenceQuery.over(data).prefer(pref).run()`` or
    ``Session(catalog).query(name).prefer(pref).run()`` instead; the shim
    routes through the same unified planning pipeline.
    """
    warnings.warn(
        "bmo() is deprecated; use PreferenceQuery.over(data).prefer(pref)"
        ".run() (see repro.query.api) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.query.api import PreferenceQuery

    return (
        PreferenceQuery.over(data)
        .prefer(pref)
        .using(algorithm)
        .optimize(False)
        .run()
    )


def bmo_groupby(
    pref: Preference,
    by: Sequence[str],
    data: Relation | Sequence[Row],
    algorithm: str = "bnl",
) -> Any:
    """Deprecated shim for ``sigma[P groupby A](R)``.

    Use ``PreferenceQuery.over(data).prefer(pref).groupby(*by).run()``
    instead; the shim routes through the same unified planning pipeline.
    """
    warnings.warn(
        "bmo_groupby() is deprecated; use PreferenceQuery.over(data)"
        ".prefer(pref).groupby(*by).run() (see repro.query.api) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.query.api import PreferenceQuery

    return (
        PreferenceQuery.over(data)
        .prefer(pref)
        .groupby(*by)
        .using(algorithm)
        .optimize(False)
        .run()
    )


def result_size(
    pref: Preference,
    data: Relation | Sequence[Row],
    attributes: Sequence[str] | None = None,
) -> int:
    """``size(P, R) = card(pi_A(sigma[P](R)))`` (Definition 18).

    Counts *distinct A-values* in the BMO result — the quantity behind the
    filter-effect propositions and the [KFH01] result-size benchmark.

    ``attributes`` overrides the projection set.  Definition 19 compares
    filter strength only between preferences on the *same* attribute set;
    Proposition 13's proof projects every result onto the union attributes,
    so cross-constructor comparisons (e.g. ``size(P1 & P2)`` vs.
    ``size(P1)``) must pass the union of the attribute sets here.
    """
    rows, _ = _unpack(data)
    best = block_nested_loop(pref, rows)
    attrs = tuple(attributes) if attributes else pref.attributes
    return len({tuple(r[a] for a in attrs) for r in best})


# -- perfect matches (Definition 14b) ------------------------------------------------

def is_dream(pref: Preference, value: Any) -> bool | None:
    """Whether ``value`` lies in ``max(P)`` — maximal in the *realm of
    wishes*, not merely in the database.  ``None`` means "statically
    unknown" (e.g. bare SCORE terms, whose supremum the library cannot see).

    Recursive sufficient-and-usually-exact rules:

    * layered / EXPLICIT: level 1,
    * BETWEEN / AROUND: distance 0,
    * Pareto & prioritized: all children dreams (exact when the domain is a
      full product, which holds for disjoint attributes),
    * intersection / disjoint union: a dream in any child cannot be beaten
      in the conjunction/disjunction,
    * anti-chain: everything is maximal.
    """
    from repro.core.preference import as_row

    row = as_row(value, pref.attributes)
    return _is_dream_row(pref, row)


def _is_dream_row(pref: Preference, row: Row) -> bool | None:
    if isinstance(pref, AntiChain):
        return True
    if isinstance(pref, LayeredPreference):
        return pref.level(row[pref.attribute]) == 1
    if isinstance(pref, ExplicitPreference):
        return pref.level(row[pref.attribute]) == 1
    if isinstance(pref, BetweenPreference):
        zero = pref.distance(row[pref.attribute])
        return zero == zero - zero  # type-correct "== 0"
    if isinstance(pref, (ParetoPreference, PrioritizedPreference)):
        verdicts = [_is_dream_row(c, row) for c in pref.children]
        if any(v is False for v in verdicts):
            return False
        if all(v is True for v in verdicts):
            return True
        return None
    if isinstance(pref, IntersectionPreference):
        verdicts = [_is_dream_row(c, row) for c in pref.children]
        if any(v is True for v in verdicts):
            return True
        return None
    if isinstance(pref, DualPreference):
        return None  # maximal in P^d = minimal in P: not tracked
    if isinstance(pref, ScorePreference):
        return None
    return None


def perfect_matches(
    pref: Preference, data: Relation | Sequence[Row]
) -> Any:
    """Tuples that are perfect matches (Definition 14b): in ``R`` *and* in
    ``max(P)``.  Every perfect match is in the BMO result, but not
    conversely — BMO falls back to best compromises when dreams are out of
    stock.  Tuples whose dream status is unknown are excluded.
    """
    rows, template = _unpack(data)
    matches = [r for r in rows if _is_dream_row(pref, r) is True]
    return _repack(matches, template)
