"""Incremental BMO maintenance over a growing database set.

Example 9 shows BMO results evolving non-monotonically as tuples arrive:
adding ``shark`` *widens* the answer, adding ``turtle`` *shrinks* it to one.
:class:`IncrementalBMO` maintains ``sigma[P](R)`` under insertions in
amortized window-size time per tuple (the online form of BNL's invariant:
the window always holds exactly the current maxima).

Deletions are fundamentally harder — a removed maximum may resurrect any
number of tuples it was dominating — so ``remove`` keeps the full history
and recomputes lazily, which is the honest cost model for strict partial
orders (no dominance counting shortcut is sound for arbitrary orders).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.core.preference import Preference, Row, as_row, project
from repro.query.algorithms import block_nested_loop


class IncrementalBMO:
    """Maintains the BMO result of a preference over a stream of rows.

    >>> live = IncrementalBMO(pref)
    >>> live.insert({"fuel_economy": 100, "insurance": 3})
    >>> live.result()        # current best matches, insertion-ordered
    """

    def __init__(self, pref: Preference):
        self.pref = pref
        self._history: list[Row] = []
        # The window maps maximal projections to the carrying rows, so
        # projection-equal tuples share one dominance test.
        self._window: dict[tuple, list[Row]] = {}
        self._inserted = 0
        self._evicted = 0
        self._rejected = 0

    # -- updates ---------------------------------------------------------------

    def insert(self, value: Any) -> bool:
        """Add one tuple; returns True iff it enters the current result."""
        row = as_row(value, self.pref.attributes)
        self._history.append(dict(row))
        self._inserted += 1
        key = project(row, self.pref.attributes)

        if key in self._window:
            self._window[key].append(dict(row))
            return True

        reps = {k: rows[0] for k, rows in self._window.items()}
        for k, rep in reps.items():
            if self.pref._lt(row, rep):
                self._rejected += 1
                return False
        evict = [
            k for k, rep in reps.items() if self.pref._lt(rep, row)
        ]
        for k in evict:
            self._evicted += len(self._window.pop(k))
        self._window[key] = [dict(row)]
        return True

    def insert_many(self, values: Iterable[Any]) -> int:
        """Insert a batch; returns how many entered the result on arrival."""
        return sum(1 for v in values if self.insert(v))

    def remove(self, value: Any) -> bool:
        """Remove one matching historical tuple and rebuild the maxima.

        Returns True iff a tuple was removed.  Cost is a full recompute —
        see the module docstring for why that is the honest contract.
        """
        row = as_row(value, self.pref.attributes)
        target = dict(row)
        for i, old in enumerate(self._history):
            if old == target:
                del self._history[i]
                break
        else:
            return False
        self._rebuild()
        return True

    def _rebuild(self) -> None:
        self._window.clear()
        maxima = block_nested_loop(self.pref, self._history)
        for row in maxima:
            key = project(row, self.pref.attributes)
            self._window.setdefault(key, []).append(dict(row))

    # -- inspection ----------------------------------------------------------------

    def result(self) -> list[Row]:
        """The current BMO result (all tuples of maximal projections)."""
        out: list[Row] = []
        for rows in self._window.values():
            out.extend(dict(r) for r in rows)
        return out

    def result_size(self) -> int:
        """Distinct maximal projections (Definition 18's size)."""
        return len(self._window)

    def seen(self) -> int:
        return len(self._history)

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._window.values())

    def __iter__(self) -> Iterator[Row]:
        return iter(self.result())

    @property
    def stats(self) -> dict[str, int]:
        """Arrival statistics: inserted / rejected on arrival / evicted."""
        return {
            "inserted": self._inserted,
            "rejected": self._rejected,
            "evicted": self._evicted,
        }

    def __repr__(self) -> str:
        return (
            f"IncrementalBMO({self.pref!r}, seen={len(self._history)}, "
            f"maxima={len(self)})"
        )
