"""Incremental BMO maintenance over a changing database set.

Example 9 shows BMO results evolving non-monotonically as tuples arrive:
adding ``shark`` *widens* the answer, adding ``turtle`` *shrinks* it to one.
:class:`IncrementalBMO` maintains ``sigma[P](R)`` under insertions in
amortized window-size time per tuple (the online form of BNL's invariant:
the window always holds exactly the current maxima).  The same maintainer
generalizes to the paper's other evaluation modes:

* ``groupby=("a",)`` maintains ``sigma[P groupby A](R)`` (Definition 16) —
  one window per group, partitioned online,
* ``top=k`` maintains the ranked k-best cut of Section 6.2 for SCORE
  preferences (with the same ``ties`` policy as :func:`~repro.query.topk
  .k_best`), kept as a sorted run instead of a dominance window.

Every update reports its effect on the visible result as a
:class:`BMODelta` of *entered* and *exited* rows — the event stream the
serving layer (:mod:`repro.server`) pushes to subscribers of continuous
winnow views.

Deletions are fundamentally harder — a removed maximum may resurrect any
number of tuples it was dominating — so ``remove`` keeps the full history
and recomputes the touched group lazily, which is the honest cost model for
strict partial orders (no dominance counting shortcut is sound for
arbitrary orders).  Those recomputes are visible in :attr:`stats` (the
``rebuilds`` / ``resurrected`` counters), so view-refresh metrics built on
top of them stay honest.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.core.base_numerical import ScorePreference
from repro.core.preference import Preference, Row, as_row, project
from repro.query.algorithms import block_nested_loop


@dataclass(frozen=True)
class BMODelta:
    """The visible effect of one maintenance step on the current result.

    ``entered`` rows became part of the result, ``exited`` rows dropped out
    (evicted by a dominating arrival, removed, or pushed off a k-best cut).
    A delta is falsy when the step changed nothing visible.
    """

    entered: tuple[Row, ...] = ()
    exited: tuple[Row, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.entered or self.exited)

    def to_dict(self) -> dict[str, list[Row]]:
        """A JSON-safe ``{"enter": [...], "exit": [...]}`` rendering."""
        return {
            "enter": [dict(r) for r in self.entered],
            "exit": [dict(r) for r in self.exited],
        }


def merge_deltas(deltas: Iterable[BMODelta]) -> BMODelta:
    """Fuse sequential deltas into one net delta.

    A row that enters and later exits within the sequence (or vice versa)
    cancels out, so the merged delta describes exactly the difference
    between the first *before* state and the last *after* state.
    """

    def cancel(pool: list[Row], row: Row) -> bool:
        for i, other in enumerate(pool):
            if other == row:
                del pool[i]
                return True
        return False

    entered: list[Row] = []
    exited: list[Row] = []
    for delta in deltas:
        for row in delta.entered:
            if not cancel(exited, row):
                entered.append(dict(row))
        for row in delta.exited:
            if not cancel(entered, row):
                exited.append(dict(row))
    return BMODelta(tuple(entered), tuple(exited))


class _Neg:
    """Order-reversing sort wrapper for arbitrary comparable scores."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Neg") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Neg) and self.value == other.value


class _WindowState:
    """The online-BNL window of one group: exactly the current maxima.

    The window maps maximal projections to the carrying rows, so
    projection-equal tuples share one dominance test.
    """

    __slots__ = ("pref", "window")

    def __init__(self, pref: Preference):
        self.pref = pref
        self.window: dict[tuple, list[Row]] = {}

    def insert(self, row: Row) -> BMODelta:
        key = project(row, self.pref.attributes)
        if key in self.window:
            self.window[key].append(dict(row))
            return BMODelta(entered=(dict(row),))
        reps = {k: rows[0] for k, rows in self.window.items()}
        for rep in reps.values():
            if self.pref._lt(row, rep):
                return BMODelta()
        exited: list[Row] = []
        for k, rep in reps.items():
            if self.pref._lt(rep, row):
                exited.extend(self.window.pop(k))
        self.window[key] = [dict(row)]
        return BMODelta(entered=(dict(row),), exited=tuple(exited))

    def rebuild(self, rows: Sequence[Row]) -> None:
        self.window.clear()
        for row in block_nested_loop(self.pref, list(rows)):
            key = project(row, self.pref.attributes)
            self.window.setdefault(key, []).append(dict(row))

    def result(self) -> list[Row]:
        out: list[Row] = []
        for rows in self.window.values():
            out.extend(dict(r) for r in rows)
        return out

    def size(self) -> int:
        return len(self.window)


class _RankedState:
    """One group's k-best cut (Section 6.2), maintained as a sorted run.

    Rows are kept ordered by (score descending, arrival ascending) — the
    exact order :func:`~repro.query.topk.k_best` materializes — so the cut
    is a prefix slice and an insertion is one bisect.
    """

    __slots__ = ("pref", "k", "ties", "keys", "rows", "seq")

    def __init__(self, pref: ScorePreference, k: int, ties: str):
        self.pref = pref
        self.k = k
        self.ties = ties
        self.keys: list[tuple[_Neg, int]] = []
        self.rows: list[Row] = []
        self.seq = 0

    def _cut(self) -> list[Row]:
        out = [dict(r) for r in self.rows[: self.k]]
        if self.ties == "all" and len(self.rows) > self.k and out:
            kth = self.keys[self.k - 1][0]
            for i in range(self.k, len(self.rows)):
                if self.keys[i][0] == kth:
                    out.append(dict(self.rows[i]))
                else:
                    break
        return out

    def insert(self, row: Row) -> BMODelta:
        before = self._cut()
        key = (_Neg(self.pref.score(row)), self.seq)
        self.seq += 1
        pos = bisect.bisect_left(self.keys, key)
        self.keys.insert(pos, key)
        self.rows.insert(pos, dict(row))
        return _diff(before, self._cut())

    def remove(self, row: Row) -> bool:
        for i, other in enumerate(self.rows):
            if other == row:
                del self.rows[i]
                del self.keys[i]
                return True
        return False

    def result(self) -> list[Row]:
        return self._cut()

    def size(self) -> int:
        return len(
            {project(r, self.pref.attributes) for r in self._cut()}
        )


def _diff(before: Sequence[Row], after: Sequence[Row]) -> BMODelta:
    """Multiset difference of two result snapshots as a delta."""
    pool = [dict(r) for r in before]
    entered: list[Row] = []
    for row in after:
        for i, old in enumerate(pool):
            if old == row:
                del pool[i]
                break
        else:
            entered.append(dict(row))
    return BMODelta(tuple(entered), tuple(pool))


class IncrementalBMO:
    """Maintains a preference query result over a stream of updates.

    >>> live = IncrementalBMO(pref)
    >>> live.insert({"fuel_economy": 100, "insurance": 3})
    >>> live.result()        # current best matches, insertion-ordered

    ``groupby`` switches to grouped-winnow maintenance (one window per
    group), ``top``/``ties`` to ranked k-best maintenance (SCORE
    preferences only).  ``insert_delta`` / ``remove_delta`` / ``apply``
    report every visible change as a :class:`BMODelta`.
    """

    def __init__(
        self,
        pref: Preference,
        groupby: Sequence[str] | None = None,
        top: int | None = None,
        ties: str = "strict",
    ):
        self.pref = pref
        self.groupby: tuple[str, ...] = tuple(groupby) if groupby else ()
        self.top = top
        self.ties = ties
        if top is not None:
            if not isinstance(pref, ScorePreference):
                raise TypeError(
                    "k-best maintenance needs a SCORE preference, got "
                    f"{type(pref).__name__}"
                )
            if top < 1:
                raise ValueError(f"k must be positive, got {top}")
            if ties not in ("strict", "all"):
                raise ValueError(f"ties must be 'strict' or 'all', got {ties!r}")
        self._attributes = tuple(
            dict.fromkeys((*pref.attributes, *self.groupby))
        )
        self._history: list[Row] = []
        self._groups: dict[tuple, _WindowState | _RankedState] = {}
        self._inserted = 0
        self._evicted = 0
        self._rejected = 0
        self._removed = 0
        self._resurrected = 0
        self._rebuilds = 0
        self._revisions = 0

    def _state(self, group: tuple) -> _WindowState | _RankedState:
        state = self._groups.get(group)
        if state is None:
            if self.top is not None:
                state = _RankedState(self.pref, self.top, self.ties)
            else:
                state = _WindowState(self.pref)
            self._groups[group] = state
        return state

    def _group_of(self, row: Row) -> tuple:
        return project(row, self.groupby) if self.groupby else ()

    # -- updates ---------------------------------------------------------------

    def insert_delta(self, value: Any) -> BMODelta:
        """Add one tuple; returns the visible enter/exit delta."""
        row = as_row(value, self._attributes)
        self._history.append(dict(row))
        self._inserted += 1
        delta = self._state(self._group_of(row)).insert(row)
        if not delta.entered:
            self._rejected += 1
        self._evicted += len(delta.exited)
        return delta

    def insert(self, value: Any) -> bool:
        """Add one tuple; returns True iff it enters the current result."""
        return bool(self.insert_delta(value).entered)

    def insert_many(self, values: Iterable[Any]) -> int:
        """Insert a batch; returns how many entered the result on arrival."""
        return sum(1 for v in values if self.insert(v))

    def remove_delta(self, value: Any) -> BMODelta | None:
        """Remove one matching tuple; returns the delta, or None if absent.

        Cost is a recompute of the touched group (a removed maximum may
        resurrect arbitrarily many dominated tuples — see the module
        docstring); ranked runs delete in place instead.  The recompute is
        counted in :attr:`stats` under ``rebuilds``.
        """
        row = as_row(value, self._attributes)
        target = dict(row)
        for i, old in enumerate(self._history):
            if old == target:
                del self._history[i]
                break
        else:
            return None
        self._removed += 1
        group = self._group_of(target)
        state = self._state(group)
        if isinstance(state, _RankedState):
            before = state.result()
            state.remove(target)
            delta = _diff(before, state.result())
        else:
            before = state.result()
            survivors = [
                r for r in self._history if self._group_of(r) == group
            ]
            state.rebuild(survivors)
            self._rebuilds += 1
            delta = _diff(before, state.result())
        if not self._history_has_group(group):
            # The last row of a group left: forget the empty window so
            # result()'s group iteration order stays first-seen-of-live.
            if not state.result():
                del self._groups[group]
        self._resurrected += len(delta.entered)
        return delta

    def _history_has_group(self, group: tuple) -> bool:
        if not self.groupby:
            return bool(self._history)
        return any(self._group_of(r) == group for r in self._history)

    def remove(self, value: Any) -> bool:
        """Remove one matching historical tuple; True iff one was removed."""
        return self.remove_delta(value) is not None

    def apply(
        self,
        inserted: Iterable[Any] = (),
        deleted: Iterable[Any] = (),
    ) -> BMODelta:
        """Apply one mutation batch; returns the fused net delta.

        Deletions are applied first (matching the serving layer's
        delete-then-insert replacement idiom); rows that enter and exit
        within the batch cancel out of the reported delta.
        """
        deltas: list[BMODelta] = []
        for value in deleted:
            delta = self.remove_delta(value)
            if delta is not None:
                deltas.append(delta)
        for value in inserted:
            deltas.append(self.insert_delta(value))
        return merge_deltas(deltas)

    def revise(
        self, new_pref: Preference, candidates: Iterable[Row] | None = None
    ) -> BMODelta:
        """Swap the maintained preference; returns the visible delta.

        The data history is untouched — only the dominance windows are
        re-derived.  ``candidates`` narrows the rows each window is
        re-derived from (the revision layer passes the old view for
        proved order refinements, view + frontier for contractions);
        ``None`` re-derives from the full history.  Ranked maintenance
        always reseeds from history: a sorted run is score-global, so no
        candidate subset short of everything is sound for a changed
        score.  Counted in :attr:`stats` under ``revisions``.
        """
        if self.top is not None and not isinstance(new_pref, ScorePreference):
            raise TypeError(
                "k-best maintenance needs a SCORE preference, got "
                f"{type(new_pref).__name__}"
            )
        before = self.result()
        self.pref = new_pref
        self._attributes = tuple(
            dict.fromkeys((*new_pref.attributes, *self.groupby))
        )
        self._groups = {}
        if self.top is not None:
            for row in self._history:
                self._state(self._group_of(row)).insert(row)
        else:
            pool = self._history if candidates is None else [
                as_row(r, self._attributes) for r in candidates
            ]
            grouped: dict[tuple, list[Row]] = {}
            for row in pool:
                grouped.setdefault(self._group_of(row), []).append(row)
            for group, rows in grouped.items():
                state = self._state(group)
                assert isinstance(state, _WindowState)
                state.rebuild(rows)
        self._revisions += 1
        return _diff(before, self.result())

    # -- inspection ----------------------------------------------------------------

    def result(self) -> list[Row]:
        """The current result (all tuples of maximal projections, or the
        k-best cut), groups in first-seen order."""
        out: list[Row] = []
        for state in self._groups.values():
            out.extend(state.result())
        return out

    def result_size(self) -> int:
        """Distinct maximal projections (Definition 18's size), summed over
        groups."""
        return sum(state.size() for state in self._groups.values())

    def seen(self) -> int:
        return len(self._history)

    def __len__(self) -> int:
        return sum(len(state.result()) for state in self._groups.values())

    def __iter__(self) -> Iterator[Row]:
        return iter(self.result())

    @property
    def stats(self) -> dict[str, int]:
        """Maintenance statistics.

        ``inserted`` / ``rejected`` / ``evicted`` count arrivals and their
        victims; ``removed`` / ``resurrected`` / ``rebuilds`` count the
        deletion side, including the group recomputes that deletions
        trigger — so latency accounting built on these numbers reflects
        the real work done; ``revisions`` counts preference swaps applied
        via :meth:`revise`.
        """
        return {
            "inserted": self._inserted,
            "rejected": self._rejected,
            "evicted": self._evicted,
            "removed": self._removed,
            "resurrected": self._resurrected,
            "rebuilds": self._rebuilds,
            "revisions": self._revisions,
        }

    def __repr__(self) -> str:
        mode = ""
        if self.groupby:
            mode += f", groupby={list(self.groupby)}"
        if self.top is not None:
            mode += f", top={self.top}"
        return (
            f"IncrementalBMO({self.pref!r}{mode}, "
            f"seen={len(self._history)}, maxima={len(self)})"
        )
