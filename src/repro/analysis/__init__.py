"""Static analysis of preference queries: constraints, checks, semantics.

The analyzer runs *before* execution, in three pieces:

* :mod:`repro.analysis.constraints` — the constraint registry: declared
  schema constraints merged with facts derived from table statistics;
* :mod:`repro.analysis.checker` — the semantic checker behind
  :meth:`PreferenceQuery.check`, producing ``PQxxx`` diagnostics;
* :mod:`repro.analysis.semantics` — Chomicki-style constraint reasoning
  that proves winnows redundant or sort-reducible, consumed by the
  ``winnow_to_sort`` / ``remove_redundant_winnow`` rewrite rules.

See ``docs/analysis.md`` for the diagnostic-code catalog.
"""

from repro.analysis.checker import check_query
from repro.analysis.constraints import (
    ConstraintSet,
    constraint_registry,
    declared_constraints,
    derived_constraints,
)
from repro.analysis.diagnostics import (
    CATALOG,
    CheckResult,
    Diagnostic,
    DiagnosticError,
)
from repro.analysis.semantics import (
    WeakOrderReduction,
    indifference_proof,
    is_weak_order,
    semantic_facts,
    semantic_prune,
    weak_order_reduction,
)

__all__ = [
    "CATALOG",
    "CheckResult",
    "ConstraintSet",
    "Diagnostic",
    "DiagnosticError",
    "WeakOrderReduction",
    "check_query",
    "constraint_registry",
    "declared_constraints",
    "derived_constraints",
    "indifference_proof",
    "is_weak_order",
    "semantic_facts",
    "semantic_prune",
    "weak_order_reduction",
]
