"""Constraint-driven preference reasoning (Chomicki-style semantics).

Given a :class:`~repro.analysis.constraints.ConstraintSet` proved for a
winnow's input, this module answers the two questions the semantic
rewrite rules ask:

* :func:`semantic_prune` — which components of the term are *indifferent*
  on every instance satisfying the constraints?  A component over
  constants compares all rows equal; a BETWEEN whose interval covers the
  column's proven value range scores every row ``0``.  Dropping them is
  equivalence preserving, and a term that prunes to nothing makes the
  winnow the identity.
* :func:`weak_order_reduction` — is the (pruned) term provably a **weak
  order** on the constrained instance?  Weak orders evaluate as ``ORDER
  BY + first group`` (one linear argmax pass, no dominance testing), and
  a key inside a chain's attributes shrinks the first group to a single
  tuple — at which point later prioritization stages can never apply
  (Proposition 11 with a singleton stage-one output).

Everything here is *conservative*: a ``None`` answer only forgoes an
optimization.  All constraints used are hereditary under selection, so
conclusions hold below arbitrary WHERE stacks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.constraints import ConstraintSet
from repro.core.base_numerical import BetweenPreference, score_function_of
from repro.core.constructors import (
    DualPreference,
    ParetoPreference,
    PrioritizedPreference,
)
from repro.core.preference import Preference


def indifference_proof(
    pref: Preference, constraints: ConstraintSet,
) -> str | None:
    """Why ``pref`` compares all constraint-satisfying rows equal, if it does."""
    constants = constraints.constant_attributes()
    if pref.attribute_set and pref.attribute_set <= set(constants):
        facts = ", ".join(
            f"{check.attribute} = {check.value!r} [{check.source}]"
            for check in (constants[a] for a in sorted(pref.attribute_set))
        )
        return f"constant under {facts}"
    if isinstance(pref, BetweenPreference):
        bounds = constraints.bounds(pref.attribute)
        if bounds is not None:
            low, high, source = bounds
            try:
                covered = pref.low <= low and high <= pref.up
            except TypeError:
                return None
            if covered:
                return (
                    f"{pref.attribute} ∈ [{low!r}, {high!r}] [{source}] lies "
                    f"inside the BETWEEN interval [{pref.low!r}, {pref.up!r}]"
                )
    return None


def semantic_prune(
    pref: Preference, constraints: ConstraintSet,
) -> tuple[Preference | None, tuple[str, ...]]:
    """Drop components indifferent under the constraints.

    Returns ``(pruned_term, provenance_notes)``; the term is ``None`` when
    the whole preference is indifferent (the winnow is the identity), and
    identical (``is``) to the input when nothing could be pruned.
    """
    proof = indifference_proof(pref, constraints)
    if proof is not None:
        return None, (proof,)
    if isinstance(pref, (ParetoPreference, PrioritizedPreference)):
        kept: list[Preference] = []
        notes: list[str] = []
        changed = False
        for child in pref.children:
            pruned, child_notes = semantic_prune(child, constraints)
            notes.extend(child_notes)
            if pruned is None:
                changed = True
                continue
            if pruned is not child:
                changed = True
            kept.append(pruned)
        if not changed:
            return pref, ()
        if not kept:
            return None, tuple(notes)
        if len(kept) == 1:
            return kept[0], tuple(notes)
        return type(pref)(tuple(kept)), tuple(notes)
    if isinstance(pref, DualPreference):
        pruned, notes = semantic_prune(pref.base, constraints)
        if pruned is None:
            return None, notes
        if pruned is pref.base:
            return pref, ()
        return DualPreference(pruned), notes
    # Other constructors entangle their attributes; partial pruning there
    # is not obviously sound (mirrors prune_constant's caution).
    return pref, ()


def is_weak_order(pref: Preference) -> bool:
    """Whether the term's order is provably *negatively transitive*.

    SCORE-representable terms are weak orders by construction (rows
    totally ordered by score); chains are weak (indeed total) orders on
    their projections.
    """
    if score_function_of(pref) is not None:
        return True
    return pref.is_chain() is True


@dataclass(frozen=True)
class WeakOrderReduction:
    """A proved reduction of a winnow to sort-based evaluation.

    ``pref`` is the (possibly smaller) term to evaluate; ``singleton``
    means the BMO set is provably one tuple (a key inside the chain's
    attributes).  ``changed`` distinguishes real term surgery from a mere
    certification of the original term.
    """

    pref: Preference
    provenance: tuple[str, ...]
    changed: bool
    singleton: bool


def weak_order_reduction(
    pref: Preference, constraints: ConstraintSet,
) -> WeakOrderReduction | None:
    """Reduce a winnow term to a weak order under the constraints, if possible.

    Three proofs compose, strongest first:

    1. constraint pruning (:func:`semantic_prune`) shrinks the term;
    2. a prioritization whose head is a chain over key attributes has a
       singleton stage-one BMO, so the whole term reduces to the head
       (Proposition 11 + key uniqueness);
    3. the surviving term is a weak order (score-representable or chain).
    """
    pruned, notes = semantic_prune(pref, constraints)
    if pruned is None:
        return None  # fully indifferent: remove_redundant_winnow territory
    changed = pruned is not pref
    provenance = list(notes)

    if isinstance(pruned, PrioritizedPreference):
        head = pruned.children[0]
        if head.is_chain() is True:
            key = constraints.key_within(head.attribute_set)
            if key is not None:
                provenance.append(
                    f"{key.describe()} [{key.source}]: the chain head has a "
                    "unique best tuple, so later stages never apply"
                )
                return WeakOrderReduction(
                    pref=head,
                    provenance=tuple(provenance),
                    changed=True,
                    singleton=True,
                )

    if not is_weak_order(pruned):
        return None

    singleton = False
    if pruned.is_chain() is True:
        key = constraints.key_within(pruned.attribute_set)
        if key is not None:
            singleton = True
            provenance.append(
                f"{key.describe()} [{key.source}]: chain projections are "
                "pairwise distinct, so the first group is one tuple"
            )
    if not provenance:
        provenance.append("weak order: totally ordered by score")
    return WeakOrderReduction(
        pref=pruned,
        provenance=tuple(provenance),
        changed=changed,
        singleton=singleton,
    )


def semantic_facts(
    pref: Preference, constraints: ConstraintSet,
) -> tuple[str, ...]:
    """Human-readable constraint-proved facts about a winnow (for PQ301)."""
    facts: list[str] = []
    pruned, notes = semantic_prune(pref, constraints)
    if pruned is None:
        facts.append(
            "winnow is the identity: preference indifferent under "
            + "; ".join(notes)
        )
        return tuple(facts)
    reduction = weak_order_reduction(pref, constraints)
    if reduction is not None and (reduction.changed or reduction.singleton):
        shape = "a single tuple" if reduction.singleton else "one sort group"
        facts.append(
            f"winnow reduces to sort-based evaluation of {reduction.pref!r} "
            f"(best-matches set is {shape}; "
            + "; ".join(reduction.provenance) + ")"
        )
    return tuple(facts)
