"""The constraint registry: declared + statistics-derived integrity facts.

Chomicki's semantic-optimization results (cs/0402003, cs/0510036) hinge on
one observation: integrity constraints can prove a preference relation is
a *weak order on the constrained instance*, at which point the winnow is a
sort — or disappears entirely.  This module assembles the constraints the
rewrite rules consume:

* **declared** constraints ride on :attr:`Schema.constraints`
  (:class:`~repro.relations.schema.Key`,
  :class:`~repro.relations.schema.FunctionalDependency`,
  :class:`~repro.relations.schema.NotNull`,
  :class:`~repro.relations.schema.Check`);
* **derived** constraints come from per-column statistics
  (:func:`repro.relations.stats.derive_column_constraints`): relations are
  immutable, so ``distinct == count`` really is a key *for this instance*,
  and ``min == max`` really is a constant.

Everything the registry proves is hereditary under selection — keys,
constants, not-null and bounds all survive on any row subset — which is
what lets the rewrite rules fire below arbitrary ``WHERE`` stacks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.relations.schema import (
    Check,
    Constraint,
    FunctionalDependency,
    Key,
    NotNull,
)
from repro.relations.stats import derive_column_constraints

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relations.relation import Relation


class ConstraintSet:
    """An immutable bundle of constraints with the queries rewrites need."""

    __slots__ = ("_constraints",)

    def __init__(self, constraints: Iterable[Constraint] = ()):
        unique: list[Constraint] = []
        for constraint in constraints:
            if constraint not in unique:
                unique.append(constraint)
        self._constraints = tuple(unique)

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __bool__(self) -> bool:
        return bool(self._constraints)

    @property
    def keys(self) -> tuple[Key, ...]:
        return tuple(c for c in self._constraints if isinstance(c, Key))

    @property
    def functional_dependencies(self) -> tuple[FunctionalDependency, ...]:
        return tuple(
            c for c in self._constraints
            if isinstance(c, FunctionalDependency)
        )

    def key_within(self, attributes: Iterable[str]) -> Key | None:
        """A key whose attributes all lie inside ``attributes``, if any.

        Such a key makes projections on ``attributes`` pairwise distinct:
        two rows agreeing there would agree on the key.
        """
        pool = set(attributes)
        for key in self.keys:
            if pool.issuperset(key.attributes):
                return key
        return None

    def constant(self, attribute: str) -> Check | None:
        """The ``attribute = value`` check constraint, if one holds."""
        for c in self._constraints:
            if isinstance(c, Check) and c.attribute == attribute and c.op == "=":
                return c
        return None

    def constant_attributes(self) -> dict[str, Check]:
        return {
            c.attribute: c
            for c in self._constraints
            if isinstance(c, Check) and c.op == "="
        }

    def not_null(self, attribute: str) -> bool:
        return any(
            isinstance(c, NotNull) and c.attribute == attribute
            for c in self._constraints
        )

    def bounds(self, attribute: str) -> tuple[Any, Any, str] | None:
        """``(low, high, source)`` when both bounds are known for a column."""
        low = high = None
        sources: list[str] = []
        for c in self._constraints:
            if not isinstance(c, Check) or c.attribute != attribute:
                continue
            if c.op == ">=" and (low is None or c.value > low):
                low = c.value
                sources.append(c.source)
            elif c.op == "<=" and (high is None or c.value < high):
                high = c.value
                sources.append(c.source)
            elif c.op == "=":
                low = high = c.value
                sources = [c.source]
                break
        if low is None or high is None:
            return None
        return low, high, sources[-1]

    def union(self, other: Iterable[Constraint]) -> "ConstraintSet":
        return ConstraintSet((*self._constraints, *other))

    def describe(self) -> tuple[str, ...]:
        return tuple(
            f"{c.describe()} [{c.source}]" for c in self._constraints
        )

    def __repr__(self) -> str:
        inner = ", ".join(c.describe() for c in self._constraints)
        return f"ConstraintSet({inner})"


def declared_constraints(relation: "Relation") -> ConstraintSet:
    """The constraints declared on a relation's schema."""
    return ConstraintSet(relation.schema.constraints)


def derived_constraints(
    relation: "Relation", attributes: Iterable[str],
) -> ConstraintSet:
    """Constraints the relation's statistics prove for ``attributes``.

    Only the named columns are profiled (statistics are lazy and memoized
    per column), so deriving for a preference's attribute set costs no
    more than the cost model's own statistics pass.
    """
    stats = relation.stats()
    derived: list[Constraint] = []
    for attribute in attributes:
        if attribute not in relation.schema:
            continue
        derived.extend(
            derive_column_constraints(stats.column(attribute), stats.source)
        )
    return ConstraintSet(derived)


def constraint_registry(
    relation: "Relation", attributes: Iterable[str] | None = None,
) -> ConstraintSet:
    """Declared ∪ derived constraints for a relation.

    ``attributes`` bounds the statistics derivation (pass the preference's
    attribute set); declared constraints are always included in full.
    Declared constraints come first, so provenance prefers ``declared``
    over ``statistics(...)`` when both prove the same fact.
    """
    registry = declared_constraints(relation)
    if attributes is None:
        attributes = relation.schema.names
    return registry.union(derived_constraints(relation, attributes))
