"""Structured diagnostics for the static preference-query analyzer.

Every finding the analyzer can produce has a stable ``PQxxx`` code, a
fixed severity, and a one-line catalog title.  Codes are grouped the way
compilers group theirs:

* ``PQ1xx`` — schema/type errors (unknown attributes, constructor/type
  mismatches, arity problems).  These queries *will* fail or misbehave at
  run time; the checker reports them as ``error``.
* ``PQ2xx`` — order-theoretic warnings and errors found by probing the
  instance (strict-partial-order law violations, disjoint-union overlap).
* ``PQ3xx`` — informational facts proved from integrity constraints
  (semantic rewrite opportunities with constraint provenance).

The catalog below is the single source of truth: ``docs/analysis.md``
renders it and the golden-message tests assert against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Severity levels, strongest first.
SEVERITIES = ("error", "warning", "info")

#: code -> (severity, catalog title)
CATALOG: dict[str, tuple[str, str]] = {
    "PQ100": ("error", "unknown relation"),
    "PQ101": ("error", "unknown attribute in preference term"),
    "PQ102": ("error", "numerical constructor over non-numeric attribute"),
    "PQ103": ("error", "SCORE/RANK function arity mismatch"),
    "PQ104": ("error", "unknown attribute in WHERE clause"),
    "PQ105": ("error", "WHERE literal incompatible with declared type"),
    "PQ106": ("error", "unknown attribute in query clause"),
    "PQ107": ("error", "BUT ONLY names an attribute without a base preference"),
    "PQ108": ("error", "TOP requires a SCORE-representable preference"),
    "PQ201": ("warning", "disjoint union components overlap on instance values"),
    "PQ202": ("error", "strict partial order violated on instance values"),
    "PQ301": ("info", "constraint-proved semantic fact"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding: code + severity + human message.

    ``attribute`` names the offending column when there is one; ``clause``
    locates the finding inside the query (``preferring``, ``where``, ...).
    """

    code: str
    message: str
    attribute: str | None = None
    clause: str | None = None

    def __post_init__(self) -> None:
        if self.code not in CATALOG:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def severity(self) -> str:
        return CATALOG[self.code][0]

    @property
    def title(self) -> str:
        return CATALOG[self.code][1]

    def __str__(self) -> str:
        where = f" [{self.clause}]" if self.clause else ""
        return f"{self.code} {self.severity}{where}: {self.message}"


class DiagnosticError(ValueError):
    """A fail-fast analyzer error raised at query-builder time.

    Carries the underlying :class:`Diagnostic` so callers (the server's
    request path, tests) can react to the code rather than parse text.
    """

    def __init__(self, diagnostic: Diagnostic):
        super().__init__(str(diagnostic))
        self.diagnostic = diagnostic


@dataclass(frozen=True)
class CheckResult:
    """The outcome of :meth:`PreferenceQuery.check`: all findings, ordered
    most severe first (errors, then warnings, then infos)."""

    diagnostics: tuple[Diagnostic, ...] = field(default_factory=tuple)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "warning")

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "info")

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics were found."""
        return not self.errors

    def raise_for_errors(self) -> "CheckResult":
        """Raise :class:`DiagnosticError` on the first error, else return self."""
        for diagnostic in self.diagnostics:
            if diagnostic.severity == "error":
                raise DiagnosticError(diagnostic)
        return self

    def render(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        return "\n".join(str(d) for d in self.diagnostics)

    def __str__(self) -> str:
        return self.render()


def sort_diagnostics(diagnostics) -> tuple[Diagnostic, ...]:
    """Stable order: errors first, then warnings, then infos, then by code."""
    rank = {severity: i for i, severity in enumerate(SEVERITIES)}
    return tuple(sorted(
        diagnostics, key=lambda d: (rank[d.severity], d.code)
    ))
