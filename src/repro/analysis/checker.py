"""The semantic checker: type-check a preference query before running it.

:func:`check_query` inspects a :class:`~repro.query.api.PreferenceQuery`
against its relation's schema and statistics and returns a
:class:`~repro.analysis.diagnostics.CheckResult` — never raising, so it is
safe to call from ``explain()``.  The checks, by code:

* **PQ100/101/104/106** — name resolution: the relation exists and every
  attribute a clause mentions is in its schema.
* **PQ102** — arithmetic constructors (AROUND, BETWEEN, linear sums) need
  numeric columns; a declared non-numeric type is a hard error.
* **PQ103** — user-supplied SCORE functions must take exactly one
  argument (the projected value), RANK combiners one per child.
* **PQ105** — WHERE literals must satisfy the declared attribute type.
* **PQ107/108** — BUT ONLY needs a base preference on the named
  attribute; TOP needs SCORE semantics (``k_best`` raises otherwise).
* **PQ201/202** — instance probes: strict-partial-order laws and
  disjoint-union range disjointness are checked on a bounded sample of
  the relation's rows (Definition 4's precondition is undecidable in
  general; a probe either finds a witness or stays silent).
* **PQ301** — constraint-proved facts: when the registry shows the winnow
  is redundant or sort-reducible, the proof is surfaced as an info
  diagnostic (the same provenance the rewrite trace records).
"""

from __future__ import annotations

import inspect
from typing import Any, Iterable

from repro.analysis.constraints import constraint_registry
from repro.analysis.diagnostics import (
    CheckResult,
    Diagnostic,
    sort_diagnostics,
)
from repro.analysis.semantics import semantic_facts
from repro.core.base_numerical import (
    BetweenPreference,
    ScorePreference,
)
from repro.core.constructors import (
    DisjointUnionPreference,
    LinearSumPreference,
    RankPreference,
)
from repro.core.preference import Preference
from repro.core.validate import StrictOrderViolation, check_strict_partial_order

#: How many distinct sample rows the PQ201/PQ202 instance probes examine.
PROBE_LIMIT = 16


def _known_names(schema: Any) -> list[str]:
    return list(schema.names)


def _unknown(code: str, clause: str, attribute: str, schema: Any) -> Diagnostic:
    return Diagnostic(
        code=code,
        clause=clause,
        attribute=attribute,
        message=(
            f"unknown attribute {attribute!r}; "
            f"relation has {_known_names(schema)}"
        ),
    )


def _callable_arity(fn: Any) -> tuple[int, bool] | None:
    """(required positional count, accepts varargs), or None if opaque."""
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):
        return None
    required = 0
    varargs = False
    for parameter in signature.parameters.values():
        if parameter.kind in (
            parameter.POSITIONAL_ONLY, parameter.POSITIONAL_OR_KEYWORD,
        ):
            if parameter.default is parameter.empty:
                required += 1
        elif parameter.kind is parameter.VAR_POSITIONAL:
            varargs = True
    return required, varargs


def _children(pref: Preference) -> tuple[Preference, ...]:
    kids = getattr(pref, "children", ())
    if callable(kids):  # method-style accessors (none currently)
        try:
            kids = kids()
        except Exception:
            return ()
    return tuple(k for k in kids if isinstance(k, Preference))


def _leaves(pref: Preference) -> Iterable[Preference]:
    yield pref
    for child in _children(pref):
        yield from _leaves(child)
    base = getattr(pref, "base", None)
    if isinstance(base, Preference):
        yield from _leaves(base)


def _check_preference(
    pref: Preference, schema: Any, out: list[Diagnostic],
) -> None:
    for attribute in sorted(pref.attribute_set):
        if attribute not in schema:
            out.append(_unknown("PQ101", "preferring", attribute, schema))

    for leaf in _leaves(pref):
        if isinstance(leaf, (BetweenPreference, LinearSumPreference)):
            kind = "BETWEEN/AROUND" if isinstance(leaf, BetweenPreference) \
                else "linear sum"
            for attribute in sorted(leaf.attribute_set):
                if attribute not in schema:
                    continue
                declared = schema[attribute]
                if declared.data_type is not None and not declared.is_numeric:
                    out.append(Diagnostic(
                        code="PQ102",
                        clause="preferring",
                        attribute=attribute,
                        message=(
                            f"{kind} needs a numeric attribute, but "
                            f"{attribute!r} is declared "
                            f"{declared.data_type.__name__}"
                        ),
                    ))
        if isinstance(leaf, RankPreference):
            arity = _callable_arity(leaf.combine)
            expected = len(_children(leaf))
            if arity is not None:
                required, varargs = arity
                if not varargs and required != expected:
                    out.append(Diagnostic(
                        code="PQ103",
                        clause="preferring",
                        message=(
                            f"RANK combiner takes {required} argument(s) "
                            f"but the term has {expected} children"
                        ),
                    ))
        elif isinstance(leaf, ScorePreference) and type(leaf) is ScorePreference:
            arity = _callable_arity(leaf._f)
            if arity is not None:
                required, varargs = arity
                if required != 1 and not (varargs and required <= 1):
                    out.append(Diagnostic(
                        code="PQ103",
                        clause="preferring",
                        message=(
                            "SCORE function must take exactly one argument "
                            f"(the projected value); got one taking {required}"
                        ),
                    ))


def _where_attributes(ast: Any) -> Iterable[tuple[str, tuple[Any, ...]]]:
    """Yield ``(attribute, literal values)`` pairs from a WHERE AST."""
    from repro.psql.ast import (
        BoolOp,
        Comparison,
        HardBetween,
        InList,
        IsNull,
        LikePattern,
        NotOp,
    )

    if isinstance(ast, Comparison):
        yield ast.attribute, (ast.value,)
    elif isinstance(ast, HardBetween):
        yield ast.attribute, (ast.low, ast.up)
    elif isinstance(ast, InList):
        yield ast.attribute, tuple(ast.values)
    elif isinstance(ast, (LikePattern, IsNull)):
        yield ast.attribute, ()
    elif isinstance(ast, BoolOp):
        for operand in ast.operands:
            yield from _where_attributes(operand)
    elif isinstance(ast, NotOp):
        yield from _where_attributes(ast.operand)


def _check_wheres(wheres: Iterable[Any], schema: Any,
                  out: list[Diagnostic]) -> None:
    from repro.relations.schema import SchemaError

    for spec in wheres:
        if spec.ast is None:
            continue  # opaque callables cannot be checked statically
        for attribute, values in _where_attributes(spec.ast):
            if attribute not in schema:
                out.append(_unknown("PQ104", "where", attribute, schema))
                continue
            declared = schema[attribute]
            for value in values:
                try:
                    declared.validate(value)
                except SchemaError as exc:
                    out.append(Diagnostic(
                        code="PQ105",
                        clause="where",
                        attribute=attribute,
                        message=str(exc),
                    ))


def _probe_rows(relation: Any, pref: Preference) -> list[dict]:
    """Up to PROBE_LIMIT distinct projections of the relation's rows."""
    seen: dict[tuple, dict] = {}
    attributes = sorted(pref.attribute_set)
    for row in relation:
        try:
            key = tuple(row[a] for a in attributes)
            hash(key)
        except (KeyError, TypeError):
            return []
        if key not in seen:
            seen[key] = row
            if len(seen) >= PROBE_LIMIT:
                break
    return list(seen.values())


def _check_instance_laws(
    pref: Preference, relation: Any, out: list[Diagnostic],
) -> None:
    rows = _probe_rows(relation, pref)
    if not rows:
        return
    try:
        check_strict_partial_order(pref, rows)
    except StrictOrderViolation as violation:
        out.append(Diagnostic(
            code="PQ202",
            clause="preferring",
            message=f"on sampled rows: {violation}",
        ))
    except Exception:
        pass  # a crashing term is reported by execution, not the probe
    for leaf in _leaves(pref):
        if isinstance(leaf, DisjointUnionPreference):
            try:
                leaf.validate_disjointness(rows)
            except ValueError as exc:
                out.append(Diagnostic(
                    code="PQ201",
                    clause="preferring",
                    message=f"on sampled rows: {exc}",
                ))
            except Exception:
                pass


def check_query(query: Any) -> CheckResult:
    """Statically check a :class:`PreferenceQuery`; never raises."""
    out: list[Diagnostic] = []
    try:
        relation = query.relation()
    except Exception as exc:
        out.append(Diagnostic(code="PQ100", message=str(exc)))
        return CheckResult(sort_diagnostics(out))
    schema = relation.schema
    pref = query.preference

    if pref is not None:
        _check_preference(pref, schema, out)
    _check_wheres(query._wheres, schema, out)

    for clause, names in (
        ("grouping", query._groupby),
        ("select", query._select or ()),
        ("order by", tuple(name for name, _ in query._order_by)),
    ):
        for name in names:
            if name not in schema:
                out.append(_unknown("PQ106", clause, name, schema))

    if pref is not None:
        from repro.query.quality import base_preferences_by_attribute

        bases = base_preferences_by_attribute(pref)
        for condition in query._quality:
            if condition.attribute not in schema:
                out.append(_unknown(
                    "PQ106", "but only", condition.attribute, schema,
                ))
            elif condition.attribute not in bases:
                out.append(Diagnostic(
                    code="PQ107",
                    clause="but only",
                    attribute=condition.attribute,
                    message=(
                        f"no base preference ranges over "
                        f"{condition.attribute!r}, so "
                        f"{condition.kind.upper()}({condition.attribute}) "
                        "is undefined"
                    ),
                ))

    if query._top is not None and pref is not None:
        if not isinstance(pref, ScorePreference):
            out.append(Diagnostic(
                code="PQ108",
                clause="top",
                message=(
                    "TOP ranks by combined score; "
                    f"{type(pref).__name__} has none (wrap the term in a "
                    "RANK/SCORE constructor)"
                ),
            ))

    has_errors = any(
        d.severity == "error" for d in out
    )
    if pref is not None and not has_errors:
        _check_instance_laws(pref, relation, out)
        try:
            constraints = constraint_registry(
                relation, sorted(pref.attribute_set),
            )
            for fact in semantic_facts(pref, constraints):
                out.append(Diagnostic(
                    code="PQ301", clause="preferring", message=fact,
                ))
        except Exception:
            pass  # statistics failures must never break check()

    return CheckResult(sort_diagnostics(out))
