"""repro — a reproduction of Kiessling's *Foundations of Preferences in
Database Systems* (VLDB 2002).

The library models preferences as strict partial orders, composes them with
the paper's constructors (Pareto, prioritized, rank(F), intersection,
disjoint union, linear sum), evaluates preference queries under the
Best-Matches-Only (BMO) model over an in-memory relational substrate, and
ships the two query-language front ends the paper describes: Preference SQL
and Preference XPath.

Quickstart::

    from repro import POS, AROUND, LOWEST, pareto, prioritized
    from repro.relations import Relation
    from repro.query import bmo

    cars = Relation.from_dicts("car", [
        {"color": "red", "price": 40000},
        {"color": "gray", "price": 20000},
    ])
    wish = prioritized(POS("color", {"red"}), AROUND("price", 25000))
    best = bmo(wish, cars)
"""

from repro.core import (
    AntiChain,
    AroundPreference,
    BetterThanGraph,
    BetweenPreference,
    ChainPreference,
    DisjointUnionPreference,
    DualPreference,
    ExplicitPreference,
    HighestPreference,
    IntersectionPreference,
    LayeredPreference,
    LinearSumPreference,
    LowestPreference,
    NegPreference,
    ParetoPreference,
    PosNegPreference,
    PosPosPreference,
    PosPreference,
    Preference,
    PrioritizedPreference,
    RankPreference,
    ScorePreference,
    SubsetPreference,
    dual,
    intersection,
    linear_sum,
    pareto,
    prioritized,
    rank,
    union,
)

# Paper-style aliases: read like Definition 6/7 constructor applications.
POS = PosPreference
NEG = NegPreference
POS_NEG = PosNegPreference
POS_POS = PosPosPreference
EXPLICIT = ExplicitPreference
AROUND = AroundPreference
BETWEEN = BetweenPreference
LOWEST = LowestPreference
HIGHEST = HighestPreference
SCORE = ScorePreference

__version__ = "1.0.0"

__all__ = [
    "AROUND",
    "AntiChain",
    "AroundPreference",
    "BETWEEN",
    "BetterThanGraph",
    "BetweenPreference",
    "ChainPreference",
    "DisjointUnionPreference",
    "DualPreference",
    "EXPLICIT",
    "ExplicitPreference",
    "HIGHEST",
    "HighestPreference",
    "IntersectionPreference",
    "LOWEST",
    "LayeredPreference",
    "LinearSumPreference",
    "LowestPreference",
    "NEG",
    "NegPreference",
    "POS",
    "POS_NEG",
    "POS_POS",
    "ParetoPreference",
    "PosNegPreference",
    "PosPosPreference",
    "PosPreference",
    "Preference",
    "PrioritizedPreference",
    "RankPreference",
    "SCORE",
    "ScorePreference",
    "SubsetPreference",
    "dual",
    "intersection",
    "linear_sum",
    "pareto",
    "prioritized",
    "rank",
    "union",
]
