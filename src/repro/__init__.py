"""repro — a reproduction of Kiessling's *Foundations of Preferences in
Database Systems* (VLDB 2002).

The library models preferences as strict partial orders, composes them with
the paper's constructors (Pareto, prioritized, rank(F), intersection,
disjoint union, linear sum), evaluates preference queries under the
Best-Matches-Only (BMO) model over an in-memory relational substrate, and
ships the two query-language front ends the paper describes: Preference SQL
and Preference XPath.

Quickstart::

    from repro import AROUND, POS, Session, pareto, prioritized

    s = Session({"car": [
        {"color": "red", "price": 40000},
        {"color": "gray", "price": 20000},
    ]})
    wish = prioritized(POS("color", {"red"}), AROUND("price", 25000))
    best = s.query("car").prefer(wish).run()
    print(s.query("car").prefer(wish).explain())   # plan + fired laws
    same = s.sql("SELECT * FROM car PREFERRING color = 'red'")

Every entry point — the fluent :class:`~repro.query.api.PreferenceQuery`
builder above, Preference SQL (:class:`~repro.psql.executor.PreferenceSQL`
or ``Session.sql``), and Preference XPath — funnels through one lazily
evaluated planning pipeline with a per-session plan cache.

Migrating from the pre-Session functional helpers (still available as
deprecated shims):

===================================  =========================================
old entry point                      fluent equivalent
===================================  =========================================
``bmo(p, rel)``                      ``PreferenceQuery.over(rel).prefer(p).run()``
``bmo(p, rel, algorithm="sfs")``     ``...prefer(p).using("sfs").run()``
``bmo_groupby(p, by, rel)``          ``...prefer(p).groupby(*by).run()``
``top_k(p, rel, k, ties=t)``         ``...prefer(p).top(k, ties=t).run()``
``but_only(p, rel, conds)``          ``...prefer(p).but_only(*conds).run()``
``optimizer.execute(p, rel, ...)``   ``Session(cat).query(name).prefer(p).run()``
``optimizer.explain(p, rel, ...)``   ``...prefer(p).explain()``
``PreferenceSQL(cat).execute(text)`` ``Session(cat).sql(text)``
===================================  =========================================

(Catalog-bound queries via ``Session.query`` additionally memoize their
plans, keyed on the relation's catalog version.)
"""

from repro.core import (
    AntiChain,
    AroundPreference,
    BetterThanGraph,
    BetweenPreference,
    ChainPreference,
    DisjointUnionPreference,
    DualPreference,
    ExplicitPreference,
    HighestPreference,
    IntersectionPreference,
    LayeredPreference,
    LinearSumPreference,
    LowestPreference,
    NegPreference,
    ParetoPreference,
    PosNegPreference,
    PosPosPreference,
    PosPreference,
    Preference,
    PrioritizedPreference,
    RankPreference,
    ScorePreference,
    SubsetPreference,
    dual,
    intersection,
    linear_sum,
    pareto,
    prioritized,
    rank,
    union,
)
from repro.query.api import PreferenceQuery
from repro.relations.catalog import Catalog
from repro.relations.relation import Relation
from repro.session import MutationEvent, Session

# Paper-style aliases: read like Definition 6/7 constructor applications.
POS = PosPreference
NEG = NegPreference
POS_NEG = PosNegPreference
POS_POS = PosPosPreference
EXPLICIT = ExplicitPreference
AROUND = AroundPreference
BETWEEN = BetweenPreference
LOWEST = LowestPreference
HIGHEST = HighestPreference
SCORE = ScorePreference

__version__ = "1.0.0"

__all__ = [
    "AROUND",
    "AntiChain",
    "AroundPreference",
    "BETWEEN",
    "BetterThanGraph",
    "BetweenPreference",
    "Catalog",
    "ChainPreference",
    "DisjointUnionPreference",
    "DualPreference",
    "EXPLICIT",
    "ExplicitPreference",
    "HIGHEST",
    "HighestPreference",
    "IntersectionPreference",
    "LOWEST",
    "LayeredPreference",
    "LinearSumPreference",
    "LowestPreference",
    "NEG",
    "NegPreference",
    "POS",
    "POS_NEG",
    "POS_POS",
    "ParetoPreference",
    "PosNegPreference",
    "PosPosPreference",
    "PosPreference",
    "Preference",
    "PreferenceQuery",
    "PrioritizedPreference",
    "RankPreference",
    "Relation",
    "SCORE",
    "ScorePreference",
    "MutationEvent",
    "Session",
    "SubsetPreference",
    "dual",
    "intersection",
    "linear_sum",
    "pareto",
    "prioritized",
    "rank",
    "union",
]
