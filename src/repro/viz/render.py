"""Text and DOT renderings of better-than graphs."""

from __future__ import annotations

from pathlib import Path

from repro.core.graph import BetterThanGraph


def render_levels(graph: BetterThanGraph) -> str:
    """One line per level, best first — the layout of the paper's figures.

    ::

        Level 1:  white  red
        Level 2:  yellow
        Level 3:  green
        Level 4:  brown  black
    """
    return graph.render()


def render_edges(graph: BetterThanGraph) -> str:
    """Covering ('Hasse') edges as ``better <- worse`` lines, grouped by
    the better value::

        white <- yellow
        yellow <- green
        ...
    """
    lines = []
    by_better: dict = {}
    for worse, better in graph.hasse_edges():
        by_better.setdefault(better, []).append(worse)
    for better in sorted(by_better, key=lambda n: (graph.level(n), str(n))):
        worse_list = ", ".join(
            sorted(graph.label(w) for w in by_better[better])
        )
        lines.append(f"{graph.label(better)} <- {worse_list}")
    if not lines:
        return "(no ranked pairs — anti-chain)"
    return "\n".join(lines)


def to_dot(graph: BetterThanGraph) -> str:
    """GraphViz DOT text (better values on top, ``rankdir=BT``)."""
    return graph.to_dot()


def write_dot(graph: BetterThanGraph, path: str | Path) -> Path:
    """Write the DOT rendering to ``path`` and return it."""
    target = Path(path)
    target.write_text(graph.to_dot(), encoding="utf-8")
    return target
