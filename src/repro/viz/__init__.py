"""Rendering better-than graphs (Definition 2's "good visual representation").

:class:`~repro.core.graph.BetterThanGraph` owns the structure; this package
renders it:

* :func:`render_levels` — the level-per-line layout of the paper's figures,
* :func:`render_edges` — covering edges as indented ``worse -> better`` text,
* :func:`to_dot` / :func:`write_dot` — GraphViz export.
"""

from repro.viz.render import render_edges, render_levels, to_dot, write_dot

__all__ = ["render_edges", "render_levels", "to_dot", "write_dot"]
