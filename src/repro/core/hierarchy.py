"""The constructor hierarchy of Section 3.4.

``C1`` is a *sub-constructor* of ``C2`` (written ``C1 <= C2``) when every
``C1`` preference can be obtained from ``C2`` by specializing constraints.
The paper states three taxonomies:

* non-numerical:  POS <= POS/POS <= EXPLICIT,  POS <= POS/NEG,  NEG <= POS/NEG
* numerical:      AROUND <= BETWEEN <= SCORE,  LOWEST/HIGHEST <= SCORE
* complex:        intersection <= Pareto  (Proposition 6), and the paper's
  suggested  prioritized <= rank(F)  for bounded score ranges.

This module provides (a) the taxonomy as data, and (b) *witness functions*
that perform each specialization — e.g. :func:`pos_as_pospos` rebuilds a POS
preference as a POS/POS term.  The test-suite checks every witness for
semantic equivalence (Definition 13) on probe domains, turning the paper's
diagrams into executable facts.  Witnesses also realize the principle of
constructor substitutability.
"""

from __future__ import annotations

from typing import Callable

from repro.core.base_nonnumerical import (
    ExplicitPreference,
    NegPreference,
    PosNegPreference,
    PosPosPreference,
    PosPreference,
)
from repro.core.base_numerical import (
    AroundPreference,
    BetweenPreference,
    HighestPreference,
    LowestPreference,
    ScorePreference,
    distance_to_interval,
)
from repro.core.constructors import (
    IntersectionPreference,
    ParetoPreference,
    PrioritizedPreference,
    RankPreference,
)
from repro.core.preference import Preference

#: The sub-constructor relation as (sub, super) pairs — the three diagrams.
SUB_CONSTRUCTOR_EDGES: tuple[tuple[str, str], ...] = (
    # non-numerical base constructors
    ("POS", "POS/POS"),
    ("POS", "POS/NEG"),
    ("NEG", "POS/NEG"),
    ("POS/POS", "EXPLICIT"),
    # numerical base constructors
    ("AROUND", "BETWEEN"),
    ("BETWEEN", "SCORE"),
    ("LOWEST", "SCORE"),
    ("HIGHEST", "SCORE"),
    # complex constructors
    ("intersection", "pareto"),
    ("prioritized", "rank(F)"),
)


def is_sub_constructor(sub: str, sup: str) -> bool:
    """Reflexive-transitive query over :data:`SUB_CONSTRUCTOR_EDGES`."""
    if sub == sup:
        return True
    frontier = {sub}
    while frontier:
        nxt = {b for (a, b) in SUB_CONSTRUCTOR_EDGES if a in frontier}
        if sup in nxt:
            return True
        nxt -= frontier
        if not nxt:
            return False
        frontier = nxt
    return False


# -- non-numerical witnesses -------------------------------------------------

def pos_as_pospos(pref: PosPreference) -> PosPosPreference:
    """POS <= POS/POS with an empty second choice set."""
    return PosPosPreference(pref.attribute, pref.pos_set, frozenset())


def pos_as_posneg(pref: PosPreference) -> PosNegPreference:
    """POS <= POS/NEG with an empty NEG-set."""
    return PosNegPreference(pref.attribute, pref.pos_set, frozenset())


def neg_as_posneg(pref: NegPreference) -> PosNegPreference:
    """NEG <= POS/NEG with an empty POS-set."""
    return PosNegPreference(pref.attribute, frozenset(), pref.neg_set)


def pospos_as_explicit(pref: PosPosPreference) -> ExplicitPreference:
    """POS/POS <= EXPLICIT: the graph ``(POS1-set)<-> (+) (POS2-set)<->``.

    The EXPLICIT-graph contains one edge ``(v2, v1)`` per pair, i.e. every
    second-choice value is worse than every favorite; EXPLICIT's catch-all
    rule then puts all other values at the bottom, matching POS/POS's third
    layer.  Requires both sets non-empty (an edge list cannot be empty).
    """
    if not pref.pos1_set or not pref.pos2_set:
        raise ValueError(
            "POS/POS -> EXPLICIT witness needs non-empty POS1 and POS2 sets"
        )
    edges = [(v2, v1) for v2 in sorted(pref.pos2_set, key=repr)
             for v1 in sorted(pref.pos1_set, key=repr)]
    return ExplicitPreference(pref.attribute, edges)


# -- numerical witnesses ------------------------------------------------------

def around_as_between(pref: AroundPreference) -> BetweenPreference:
    """AROUND <= BETWEEN with ``low = up = z``."""
    return BetweenPreference(pref.attribute, pref.z, pref.z)


def between_as_score(pref: BetweenPreference) -> ScorePreference:
    """BETWEEN <= SCORE with ``f(x) = -distance(x, [low, up])``."""
    low, up = pref.low, pref.up
    return ScorePreference(
        pref.attribute,
        lambda v: -distance_to_interval(v, low, up),
        name=f"-distance(., [{low!r}, {up!r}])",
    )


def highest_as_score(pref: HighestPreference) -> ScorePreference:
    """HIGHEST <= SCORE with ``f(x) = x``."""
    return ScorePreference(pref.attribute, lambda v: v, name="x")


def lowest_as_score(pref: LowestPreference) -> ScorePreference:
    """LOWEST <= SCORE with ``f(x) = -x``."""
    return ScorePreference(pref.attribute, lambda v: -v, name="-x")


# -- complex witnesses --------------------------------------------------------

def intersection_as_pareto(pref: IntersectionPreference) -> ParetoPreference:
    """intersection <= Pareto: Proposition 6 — on identical attribute sets,
    ``P1 (x) P2 == P1 <> P2``; so any intersection term can be supplied
    where a Pareto term is requested."""
    return ParetoPreference(pref.children)


def prioritized_as_rank(
    pref: PrioritizedPreference,
    score_bounds: dict[int, tuple[float, float]],
) -> RankPreference:
    """prioritized <= rank(F): the paper's "obvious possibility".

    For SCORE children whose scores live in known bounded ranges, a weighted
    sum with sufficiently separated weights makes the combined score
    lexicographic.  ``score_bounds[i] = (lo, hi)`` bounds child i's scores
    over the intended value pool.

    The construction normalizes each score into ``[0, 1]`` and assigns child
    i the weight ``(n_children + 1) ** (n - 1 - i)``; a strict gain on a more
    important child then always outweighs the largest possible gain on all
    less important children combined.

    Caveat (why '&' <= rank(F) is only *suggested* in the paper): equality of
    normalized scores is coarser than projection equality, so the witness is
    exact only when each child's score function is injective on the pool —
    e.g. chains like LOWEST/HIGHEST over distinct values.  The test-suite
    exercises exactly that regime.
    """
    children = pref.children
    n = len(children)
    for i, child in enumerate(children):
        if not isinstance(child, ScorePreference):
            raise TypeError(
                f"prioritized -> rank witness needs SCORE children; child {i} "
                f"is {type(child).__name__}"
            )
        if i not in score_bounds:
            raise ValueError(f"missing score bounds for child {i}")

    spans = {}
    for i, (lo, hi) in score_bounds.items():
        spans[i] = (lo, (hi - lo) or 1.0)

    base = float(n + 1)

    def combine(*scores: float) -> float:
        total = 0.0
        for i, s in enumerate(scores):
            lo, span = spans[i]
            normalized = (s - lo) / span
            total += normalized * (base ** (n - 1 - i))
        return total

    return RankPreference(combine, children, name="lexicographic_weighted_sum")


#: Human-readable registry used by docs, tests and the benchmark harness.
WITNESSES: dict[tuple[str, str], Callable[..., Preference]] = {
    ("POS", "POS/POS"): pos_as_pospos,
    ("POS", "POS/NEG"): pos_as_posneg,
    ("NEG", "POS/NEG"): neg_as_posneg,
    ("POS/POS", "EXPLICIT"): pospos_as_explicit,
    ("AROUND", "BETWEEN"): around_as_between,
    ("BETWEEN", "SCORE"): between_as_score,
    ("HIGHEST", "SCORE"): highest_as_score,
    ("LOWEST", "SCORE"): lowest_as_score,
    ("intersection", "pareto"): intersection_as_pareto,
    ("prioritized", "rank(F)"): prioritized_as_rank,
}
