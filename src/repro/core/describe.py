"""Natural-language descriptions of preference terms.

Desideratum 1 of the paper asks for "an intuitive understanding and
declarative specification of preferences"; the intuitive reading should
survive composition.  :func:`describe` renders any preference term as the
English sentence the paper writes next to each constructor definition —
useful in UIs, EXPLAIN output and error messages.
"""

from __future__ import annotations


from repro.core.base_nonnumerical import (
    ExplicitPreference,
    LayeredPreference,
    NegPreference,
    Others,
    PosNegPreference,
    PosPosPreference,
    PosPreference,
)
from repro.core.base_numerical import (
    AroundPreference,
    BetweenPreference,
    HighestPreference,
    LowestPreference,
    ScorePreference,
)
from repro.core.constructors import (
    DisjointUnionPreference,
    DualPreference,
    IntersectionPreference,
    LinearSumPreference,
    ParetoPreference,
    PrioritizedPreference,
    RankPreference,
)
from repro.core.preference import AntiChain, ChainPreference, Preference


def _values(values) -> str:
    return ", ".join(sorted(map(str, values)))


def describe(pref: Preference, depth: int = 0) -> str:
    """One English sentence (or an indented block for compounds)."""
    pad = "  " * depth
    if isinstance(pref, PosPreference):
        return (
            f"{pad}{pref.attribute} should be one of {{{_values(pref.pos_set)}}}; "
            "failing that, any other value is acceptable"
        )
    if isinstance(pref, NegPreference):
        return (
            f"{pad}{pref.attribute} should not be any of "
            f"{{{_values(pref.neg_set)}}}; only if unavoidable, a disliked "
            "value is acceptable"
        )
    if isinstance(pref, PosNegPreference):
        return (
            f"{pad}{pref.attribute} should be one of {{{_values(pref.pos_set)}}}, "
            f"otherwise anything except {{{_values(pref.neg_set)}}}, "
            "and only then a disliked value"
        )
    if isinstance(pref, PosPosPreference):
        return (
            f"{pad}{pref.attribute} should be one of {{{_values(pref.pos1_set)}}}, "
            f"or failing that one of {{{_values(pref.pos2_set)}}}, "
            "or failing that anything"
        )
    if isinstance(pref, LayeredPreference):
        layers = []
        for layer in pref.layers:
            layers.append("anything else" if isinstance(layer, Others)
                          else f"{{{_values(layer)}}}")
        return (
            f"{pad}{pref.attribute} layered best-to-worst: "
            + " > ".join(layers)
        )
    if isinstance(pref, ExplicitPreference):
        edges = "; ".join(f"{b} over {w}" for w, b in pref.edges)
        tail = ", everything unlisted last" if pref.rank_others else ""
        return f"{pad}{pref.attribute} handcrafted: {edges}{tail}"
    if isinstance(pref, AroundPreference):
        return f"{pad}{pref.attribute} as close to {pref.z} as possible"
    if isinstance(pref, BetweenPreference):
        return (
            f"{pad}{pref.attribute} between {pref.low} and {pref.up}, "
            "or as close to that interval as possible"
        )
    if isinstance(pref, LowestPreference):
        return f"{pad}{pref.attribute} as low as possible"
    if isinstance(pref, HighestPreference):
        return f"{pad}{pref.attribute} as high as possible"
    if isinstance(pref, RankPreference):
        inner = "\n".join(describe(c, depth + 1) for c in pref.children)
        return (
            f"{pad}rank by combined score {pref.score_name} over:\n{inner}"
        )
    if isinstance(pref, ScorePreference):
        return (
            f"{pad}{', '.join(pref.attributes)} with the highest "
            f"{pref.score_name} score"
        )
    if isinstance(pref, AntiChain):
        return f"{pad}no opinion about {', '.join(pref.attributes)}"
    if isinstance(pref, ChainPreference):
        return f"{pad}{pref.attribute} totally ordered by {pref._key_name}"
    if isinstance(pref, DualPreference):
        return f"{pad}the opposite of:\n{describe(pref.base, depth + 1)}"
    if isinstance(pref, ParetoPreference):
        inner = "\n".join(describe(c, depth + 1) for c in pref.children)
        return f"{pad}all of these, equally important:\n{inner}"
    if isinstance(pref, PrioritizedPreference):
        inner = "\n".join(describe(c, depth + 1) for c in pref.children)
        return f"{pad}in strictly decreasing importance:\n{inner}"
    if isinstance(pref, IntersectionPreference):
        inner = "\n".join(describe(c, depth + 1) for c in pref.children)
        return f"{pad}only where all of these agree:\n{inner}"
    if isinstance(pref, DisjointUnionPreference):
        inner = "\n".join(describe(c, depth + 1) for c in pref.children)
        return f"{pad}assembled from these separate pieces:\n{inner}"
    if isinstance(pref, LinearSumPreference):
        return (
            f"{pad}everything from the first world over everything from "
            f"the second:\n{describe(pref.first, depth + 1)}\n"
            f"{describe(pref.second, depth + 1)}"
        )
    return f"{pad}{pref!r}"
