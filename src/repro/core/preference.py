"""The preference protocol: strict partial orders over attribute projections.

Definition 1 of the paper: a preference ``P = (A, <_P)`` is a strict partial
order where ``A`` is a set of attribute names and ``<_P`` is a subset of
``dom(A) x dom(A)``.  The intended reading is kept verbatim here:

    ``x <_P y`` is interpreted as "I like y better than x".

Values are *rows*: mappings from attribute name to value.  Every preference
projects the attributes it declares out of the rows it is given, so complex
preferences whose sub-preferences share attributes (Example 3 of the paper)
work without any special casing — both sub-preferences simply project the
same column.  Scalars and positional tuples are accepted for convenience and
normalized by :func:`as_row`.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.domains import Domain, FiniteDomain

#: A database row: attribute name -> value.
Row = Mapping[str, Any]


def as_row(value: Any, attributes: Sequence[str]) -> dict[str, Any]:
    """Normalize ``value`` into a row over ``attributes``.

    Accepted shapes:

    * a mapping containing at least the required attributes (extra keys are
      fine and simply ignored by projection);
    * a scalar, when there is exactly one attribute;
    * a sequence of matching length, zipped positionally.
    """
    if isinstance(value, Mapping):
        missing = [a for a in attributes if a not in value]
        if missing:
            raise KeyError(
                f"row {value!r} lacks attribute(s) {missing} required by the preference"
            )
        return dict(value)
    if len(attributes) == 1:
        return {attributes[0]: value}
    if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
        if len(value) != len(attributes):
            raise ValueError(
                f"positional value {value!r} has {len(value)} components, "
                f"expected {len(attributes)} for attributes {tuple(attributes)}"
            )
        return dict(zip(attributes, value))
    raise TypeError(
        f"cannot interpret {value!r} as a row over attributes {tuple(attributes)}"
    )


def project(row: Row, attributes: Sequence[str]) -> tuple[Any, ...]:
    """The projection of a row onto ``attributes``, as a tuple."""
    return tuple(row[a] for a in attributes)


class Ordering(enum.Enum):
    """Outcome of comparing two values under a preference."""

    BETTER = "better"       # first argument is better
    WORSE = "worse"         # first argument is worse
    EQUAL = "equal"         # equal projections
    UNRANKED = "unranked"   # incomparable (and not projection-equal)


class Preference:
    """Base class for all preference terms.

    Subclasses implement :meth:`_lt` on *normalized rows*; all public entry
    points normalize their inputs first.  Each subclass must also provide a
    structural :attr:`signature` so that terms can be compared, hashed,
    serialized, and pattern-matched by the algebra rewriter.
    """

    def __init__(self, attributes: Sequence[str], domain: Domain | None = None):
        if not attributes:
            raise ValueError("a preference needs at least one attribute name")
        # Keep declaration order for display; use the frozenset for set
        # semantics (the paper: component order within dom(A) is irrelevant).
        ordered: dict[str, None] = {}
        for a in attributes:
            ordered[str(a)] = None
        self._attributes = tuple(ordered)
        self._domain = domain

    # -- identity ----------------------------------------------------------

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attribute names ``A`` of ``P = (A, <_P)``."""
        return self._attributes

    @property
    def attribute_set(self) -> frozenset[str]:
        return frozenset(self._attributes)

    @property
    def domain(self) -> Domain | None:
        """Optional declared domain ``dom(A)`` (often implicit, as in the paper)."""
        return self._domain

    @property
    def signature(self) -> tuple:
        """A hashable structural description of this term.

        Two terms with equal signatures denote syntactically identical
        preference terms (a sufficient — not necessary — condition for the
        semantic equivalence of Definition 13).
        """
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Preference):
            return NotImplemented
        return self.signature == other.signature

    def __hash__(self) -> int:
        return hash(self.signature)

    @property
    def children(self) -> tuple["Preference", ...]:
        """Direct sub-terms (empty for base preferences)."""
        return ()

    # -- order -------------------------------------------------------------

    def _lt(self, x: Row, y: Row) -> bool:
        """``x <_P y`` on normalized rows.  Subclasses implement this."""
        raise NotImplementedError

    def lt(self, x: Any, y: Any) -> bool:
        """``x <_P y``: *y is better than x*."""
        return self._lt(as_row(x, self._attributes), as_row(y, self._attributes))

    def dominates(self, x: Any, y: Any) -> bool:
        """True iff ``x`` is better than ``y`` (i.e. ``y <_P x``)."""
        return self.lt(y, x)

    def eq_on(self, x: Any, y: Any) -> bool:
        """Projection equality: ``x[A] = y[A]``."""
        xr = as_row(x, self._attributes)
        yr = as_row(y, self._attributes)
        return project(xr, self._attributes) == project(yr, self._attributes)

    def unranked(self, x: Any, y: Any) -> bool:
        """Definition 1's distinctive feature: neither is better.

        Follows the paper literally — ``not (x <_P y) and not (y <_P x)`` —
        so projection-equal values are unranked too (``<_P`` is irreflexive).
        """
        return not self.lt(x, y) and not self.lt(y, x)

    def compare(self, x: Any, y: Any) -> Ordering:
        """Classify the pair: BETTER / WORSE / EQUAL / UNRANKED (x vs. y)."""
        if self.lt(x, y):
            return Ordering.WORSE
        if self.lt(y, x):
            return Ordering.BETTER
        if self.eq_on(x, y):
            return Ordering.EQUAL
        return Ordering.UNRANKED

    # -- chain knowledge ---------------------------------------------------

    def is_chain(self) -> bool | None:
        """Statically known chain status: True / False / None (unknown).

        Definition 3a: ``P`` is a chain if every two distinct domain values
        are ranked.  Only some constructors can promise this syntactically
        (e.g. LOWEST/HIGHEST, prioritized compositions of chains per
        Proposition 3h); for everything else the answer is ``None`` and the
        finite-domain checker in :mod:`repro.core.validate` can decide.
        """
        return None

    # -- derived constructions ---------------------------------------------

    def dual(self) -> "Preference":
        """The dual preference ``P^d`` (Definition 3c), order reversed."""
        from repro.core.constructors import DualPreference

        return DualPreference(self)

    def restrict_to(self, values: Iterable[Any]) -> "SubsetPreference":
        """The subset preference induced by ``values`` (Definition 3d)."""
        return SubsetPreference(self, values)

    # -- evaluation helpers (naive; the query layer has the real engines) ---

    def maximal_of(self, values: Iterable[Any]) -> list[Any]:
        """Maximal elements among ``values`` by exhaustive better-than tests.

        This is the declarative ``max(P_R)`` of Definition 14 evaluated the
        naive O(n^2) way; it is the reference implementation the efficient
        algorithms in :mod:`repro.query.algorithms` are tested against.
        Duplicates (projection-equal values) are all retained, as BMO keeps
        every tuple whose projection is maximal.
        """
        pool = list(values)
        rows = [as_row(v, self._attributes) for v in pool]
        result = []
        for i, candidate in enumerate(rows):
            beaten = any(
                i != j and self._lt(candidate, other)
                for j, other in enumerate(rows)
            )
            if not beaten:
                result.append(pool[i])
        return result

    def ranked_pairs(self, values: Iterable[Any]) -> list[tuple[Any, Any]]:
        """All pairs ``(x, y)`` with ``x <_P y`` among ``values``."""
        pool = list(values)
        rows = [as_row(v, self._attributes) for v in pool]
        pairs = []
        for i, j in itertools.permutations(range(len(pool)), 2):
            if self._lt(rows[i], rows[j]):
                pairs.append((pool[i], pool[j]))
        return pairs

    def __repr__(self) -> str:  # subclasses override with nicer terms
        return f"{type(self).__name__}({', '.join(self._attributes)})"


class AntiChain(Preference):
    """The anti-chain preference ``S<->`` (Definition 3b): nothing is ranked.

    Anti-chains look trivial but are load-bearing: ``A<-> & P`` *is* the
    grouped preference query of Definition 16, and several algebra laws
    normalize conflicting terms to anti-chains (e.g. ``P (x) P^d == A<->``).
    """

    def __init__(self, attributes: Sequence[str] | str, domain: Domain | None = None):
        if isinstance(attributes, str):
            attributes = (attributes,)
        super().__init__(attributes, domain)

    @property
    def signature(self) -> tuple:
        return ("antichain", self.attribute_set)

    def _lt(self, x: Row, y: Row) -> bool:
        return False

    def is_chain(self) -> bool | None:
        # A one-value domain would technically be a chain, but statically we
        # cannot know the domain size; an anti-chain over >1 values is not.
        return None if self._domain is None else len(tuple(self._domain)) <= 1

    def __repr__(self) -> str:
        return f"AntiChain({', '.join(self.attributes)})"


class SubsetPreference(Preference):
    """Restriction of a preference to an explicit value set (Definition 3d).

    Database preferences ``P_R`` (Definition 14a) are subset preferences for
    ``S = R[A]``.  Values outside ``S`` are outside the restricted domain;
    comparisons involving them report ``False`` (unranked) rather than
    raising, honouring the design rule that conflicts or out-of-world values
    must never crash a query.
    """

    def __init__(self, base: Preference, values: Iterable[Any]):
        super().__init__(base.attributes, None)
        self.base = base
        normalized = [as_row(v, base.attributes) for v in values]
        self._members = {project(r, base.attributes) for r in normalized}
        self._domain = FiniteDomain(project(r, base.attributes) for r in normalized)

    @property
    def signature(self) -> tuple:
        return ("subset", self.base.signature, frozenset(self._members))

    @property
    def children(self) -> tuple[Preference, ...]:
        return (self.base,)

    def member_projections(self) -> frozenset[tuple]:
        return frozenset(self._members)

    def _lt(self, x: Row, y: Row) -> bool:
        if project(x, self.attributes) not in self._members:
            return False
        if project(y, self.attributes) not in self._members:
            return False
        return self.base._lt(x, y)

    def __repr__(self) -> str:
        return f"SubsetPreference({self.base!r}, |S|={len(self._members)})"


class ChainPreference(Preference):
    """A generic total order over a single attribute via a sort key.

    Definition 3a as a constructor: ``x <_P y  iff  key(x) < key(y)``.
    The caller promises that ``key`` is injective on the attribute's domain
    (otherwise equal-key values are unranked and the result is merely a weak
    order — exactly the SCORE situation, see
    :class:`repro.core.base_numerical.ScorePreference`).
    """

    def __init__(
        self,
        attribute: str,
        key: Callable[[Any], Any] | None = None,
        domain: Domain | None = None,
        key_name: str = "identity",
    ):
        super().__init__((attribute,), domain)
        self._key = key if key is not None else _identity
        self._key_name = key_name if key is not None else "identity"

    @property
    def attribute(self) -> str:
        return self.attributes[0]

    @property
    def signature(self) -> tuple:
        return ("chain", self.attribute, self._key_name)

    def key(self, value: Any) -> Any:
        return self._key(value)

    def _lt(self, x: Row, y: Row) -> bool:
        return self._key(x[self.attribute]) < self._key(y[self.attribute])

    def is_chain(self) -> bool | None:
        return True

    def __repr__(self) -> str:
        return f"ChainPreference({self.attribute}, key={self._key_name})"


def _identity(value: Any) -> Any:
    return value


def attribute_union(*prefs: Preference) -> tuple[str, ...]:
    """Ordered union of the attribute tuples of several preferences."""
    merged: dict[str, None] = {}
    for pref in prefs:
        for a in pref.attributes:
            merged[a] = None
    return tuple(merged)


def values_as_rows(pref: Preference, values: Iterable[Any]) -> list[dict[str, Any]]:
    """Normalize an iterable of values into rows for ``pref``."""
    return [as_row(v, pref.attributes) for v in values]


def distinct_projections(pref: Preference, values: Iterable[Any]) -> list[tuple]:
    """Distinct projections of ``values`` onto ``pref``'s attributes.

    This is ``pi_A(R)`` with duplicate elimination — the carrier of the
    database preference ``P_R`` and the unit in which result sizes
    (Definition 18) are counted.
    """
    seen: dict[tuple, None] = {}
    for row in values_as_rows(pref, values):
        seen[project(row, pref.attributes)] = None
    return list(seen)
