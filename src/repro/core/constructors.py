"""Complex preference constructors (Definitions 5 and 8-12).

Accumulating constructors combine preferences of possibly different parties:

* Pareto accumulation ``P1 (x) P2`` — equally important (Definition 8),
* prioritized accumulation ``P1 & P2`` — ordered importance (Definition 9),
* numerical accumulation ``rank(F)(P1, P2)`` — combined scores (Definition 10).

Aggregating constructors assemble preferences piecewise:

* intersection ``P1 <> P2`` and disjoint union ``P1 + P2`` (Definition 11),
* linear sum ``P1 (+) P2`` (Definition 12).

Plus the dual ``P^d`` (Definition 3c).  All constructors are closed under
strict-partial-order semantics (Proposition 1); the property-based tests
verify this closure on randomized finite instances.

Python operator sugar (documented, deliberately small):

* ``p1 & p2``  -> prioritized (the paper's own glyph),
* ``p1 * p2``  -> Pareto (``x`` as in the paper's (x)),
* ``p1 + p2``  -> disjoint union.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.core.base_numerical import ScorePreference
from repro.core.domains import Domain, FiniteDomain
from repro.core.preference import (
    Preference,
    Row,
    attribute_union,
    project,
)


class _CompoundPreference(Preference):
    """Shared plumbing for constructors over n >= 2 sub-preferences."""

    _symbol = "?"
    _tag = "compound"

    def __init__(self, prefs: Sequence[Preference], domain: Domain | None = None):
        if len(prefs) < 2:
            raise ValueError(
                f"{type(self).__name__} needs at least two sub-preferences"
            )
        super().__init__(attribute_union(*prefs), domain)
        self._prefs = tuple(prefs)

    @property
    def children(self) -> tuple[Preference, ...]:
        return self._prefs

    @property
    def signature(self) -> tuple:
        return (self._tag, tuple(p.signature for p in self._prefs))

    def __repr__(self) -> str:
        inner = f" {self._symbol} ".join(repr(p) for p in self._prefs)
        return f"({inner})"


class ParetoPreference(_CompoundPreference):
    """Pareto accumulation ``P1 (x) P2 (x) ...`` — all equally important.

    Definition 8, in its n-ary form: ``x <_P y`` iff every component is
    better-or-projection-equal and at least one is strictly better.  For two
    preferences this is literally the paper's formula; associativity
    (Proposition 2b) makes the n-ary form unambiguous.  Sub-preferences may
    share attributes (Example 3): each child projects its own columns.
    The maximal values of ``P`` form the Pareto-optimal set.
    """

    _symbol = "(x)"
    _tag = "pareto"

    def _lt(self, x: Row, y: Row) -> bool:
        some_strict = False
        for p in self._prefs:
            if p._lt(x, y):
                some_strict = True
            elif project(x, p.attributes) != project(y, p.attributes):
                return False  # worse or unranked in this component: not tolerable
        return some_strict


class PrioritizedPreference(_CompoundPreference):
    """Prioritized accumulation ``P1 & P2 & ...`` — lexicographic importance.

    Definition 9: ``x < y  iff  x1 <_P1 y1  or  (x1 = y1 and x2 <_P2 y2)``,
    the strict variant of the lexicographic order; associativity is
    Proposition 2c.  ``P2`` is respected only where ``P1`` does not mind.
    """

    _symbol = "&"
    _tag = "prioritized"

    def _lt(self, x: Row, y: Row) -> bool:
        for p in self._prefs:
            if p._lt(x, y):
                return True
            if project(x, p.attributes) != project(y, p.attributes):
                return False  # unranked at the more important level: stop
        return False

    def is_chain(self) -> bool | None:
        # Proposition 3h: prioritization of chains over pairwise disjoint
        # attributes is a chain.  (With shared attributes the claim needs
        # the components to coincide there; we stay conservative.)
        seen: set[str] = set()
        for p in self._prefs:
            if p.is_chain() is not True:
                return None
            if seen & set(p.attributes):
                return None
            seen |= set(p.attributes)
        return True


class RankPreference(ScorePreference):
    """Numerical accumulation ``rank(F)(P1, ..., Pn)`` (Definition 10).

    All inputs must be score preferences — by constructor substitutability
    (Section 3.4) this admits AROUND, BETWEEN, LOWEST, HIGHEST and nested
    ``rank(F)`` terms, not only literal SCORE terms.  The result is itself a
    SCORE preference with ``f = F o (f1, ..., fn)``, so ranks nest and the
    optimizer can evaluate them by sorting.
    """

    def __init__(
        self,
        combine: Callable[..., Any],
        prefs: Sequence[Preference],
        name: str | None = None,
        domain: Domain | None = None,
    ):
        if len(prefs) < 1:
            raise ValueError("rank(F) needs at least one score preference")
        bad = [p for p in prefs if not isinstance(p, ScorePreference)]
        if bad:
            raise TypeError(
                "rank(F) requires SCORE preferences (or sub-constructors of "
                f"SCORE); got {', '.join(type(p).__name__ for p in bad)}"
            )
        self._prefs = tuple(prefs)
        self._combine = combine
        combine_name = name if name is not None else getattr(combine, "__name__", "F")
        attributes = attribute_union(*prefs)

        def combined_score(value: Any) -> Any:
            # ``value`` is the projection tuple over the union attributes
            # (or a bare value for a single attribute); rebuild a row so each
            # child can project its own columns.
            if len(attributes) == 1:
                row = {attributes[0]: value}
            else:
                row = dict(zip(attributes, value))
            return combine(*(p.score(row) for p in self._prefs))

        super().__init__(attributes, combined_score, name=combine_name, domain=domain)

    @property
    def children(self) -> tuple[Preference, ...]:
        return self._prefs

    @property
    def combine(self) -> Callable[..., Any]:
        return self._combine

    @property
    def signature(self) -> tuple:
        return ("rank", self.score_name, tuple(p.signature for p in self._prefs))

    def __repr__(self) -> str:
        inner = ", ".join(repr(p) for p in self._prefs)
        return f"rank({self.score_name})({inner})"


class IntersectionPreference(_CompoundPreference):
    """Intersection aggregation ``P1 <> P2`` (Definition 11a).

    Both preferences must act on the same attribute set; ``x < y`` iff both
    agree.  Proposition 6 identifies it with Pareto on shared attributes.
    """

    _symbol = "<>"
    _tag = "intersection"

    def __init__(self, prefs: Sequence[Preference], domain: Domain | None = None):
        _require_same_attributes("intersection", prefs)
        super().__init__(prefs, domain)

    def _lt(self, x: Row, y: Row) -> bool:
        return all(p._lt(x, y) for p in self._prefs)


class DisjointUnionPreference(_CompoundPreference):
    """Disjoint union aggregation ``P1 + P2`` (Definition 11b).

    Precondition (Definition 4): the ranges of the component orders must be
    disjoint — each value is touched by at most one component.  The library
    cannot decide this for infinite domains; :func:`validate_disjointness`
    checks it on any finite probe set, and the finite-domain test suite
    enforces it.  Under the precondition, ``or``-ing the components is again
    a strict partial order.
    """

    _symbol = "+"
    _tag = "union"

    def __init__(self, prefs: Sequence[Preference], domain: Domain | None = None):
        _require_same_attributes("disjoint union", prefs)
        super().__init__(prefs, domain)

    def _lt(self, x: Row, y: Row) -> bool:
        return any(p._lt(x, y) for p in self._prefs)

    def validate_disjointness(self, probe_values: Iterable[Any]) -> None:
        """Raise ``ValueError`` if two components rank the same probe value.

        ``range(<_P)`` (Definition 4) restricted to the probe set is
        computed per component; overlapping ranges violate the disjoint
        union precondition.
        """
        pool = list(probe_values)
        ranges: list[set] = []
        for p in self._prefs:
            touched: set = set()
            for a in pool:
                for b in pool:
                    if a is b:
                        continue
                    if p.lt(a, b):
                        touched.add(project_value(p, a))
                        touched.add(project_value(p, b))
            ranges.append(touched)
        for i in range(len(ranges)):
            for j in range(i + 1, len(ranges)):
                overlap = ranges[i] & ranges[j]
                if overlap:
                    raise ValueError(
                        f"components {i} and {j} of a disjoint union both rank "
                        f"{sorted(map(repr, overlap))[:5]}"
                    )


class LinearSumPreference(Preference):
    """Linear sum ``P1 (+) P2`` (Definition 12): P1's world atop P2's world.

    ``P1`` and ``P2`` live on different single attributes with disjoint
    domains; the sum lives on a *new* attribute whose domain is the union.
    Every ``dom(A1)`` value is better than every ``dom(A2)`` value; within
    each side the original order applies.  Both children must therefore
    declare their domains.  The paper uses (+) as the design recipe for the
    base constructors, e.g. ``POS = POS-set<-> (+) other-values<->``.
    """

    def __init__(
        self,
        first: Preference,
        second: Preference,
        attribute: str | None = None,
    ):
        for which, p in (("first", first), ("second", second)):
            if len(p.attributes) != 1:
                raise ValueError(f"linear sum needs single-attribute operands "
                                 f"({which} has {p.attributes})")
            if p.domain is None:
                raise ValueError(
                    f"linear sum needs declared domains; the {which} operand "
                    f"{p!r} has none"
                )
        if attribute is None:
            attribute = f"{first.attributes[0]}_plus_{second.attributes[0]}"
        super().__init__((attribute,), None)
        self.first = first
        self.second = second
        # The sum's own domain is the union (Definition 12), which makes
        # linear sums nest: (P1 (+) P2) (+) P3 works because the inner sum
        # can report membership.  Finite unions are computed eagerly.
        if isinstance(first.domain, FiniteDomain) and isinstance(
            second.domain, FiniteDomain
        ):
            if not first.domain.is_disjoint_from(second.domain):
                raise ValueError(
                    "linear sum requires disjoint domains (Definition 12)"
                )
            self._domain = first.domain.union(second.domain)

    @property
    def attribute(self) -> str:
        return self.attributes[0]

    @property
    def children(self) -> tuple[Preference, ...]:
        return (self.first, self.second)

    @property
    def signature(self) -> tuple:
        return ("linear_sum", self.first.signature, self.second.signature)

    def _member(self, pref: Preference, value: Any) -> bool:
        return pref.domain is not None and pref.domain.contains(value)

    def _lt(self, x: Row, y: Row) -> bool:
        xv, yv = x[self.attribute], y[self.attribute]
        in1_x, in1_y = self._member(self.first, xv), self._member(self.first, yv)
        in2_x, in2_y = self._member(self.second, xv), self._member(self.second, yv)
        if in1_x and in1_y and self.first.lt(xv, yv):
            return True
        if in2_x and in2_y and self.second.lt(xv, yv):
            return True
        return in2_x and in1_y  # x from the lower world, y from the upper

    def __repr__(self) -> str:
        return f"({self.first!r} (+) {self.second!r})"


class DualPreference(Preference):
    """The dual ``P^d`` (Definition 3c): ``x <_Pd y  iff  y <_P x``."""

    def __init__(self, base: Preference):
        super().__init__(base.attributes, base.domain)
        self.base = base

    @property
    def children(self) -> tuple[Preference, ...]:
        return (self.base,)

    @property
    def signature(self) -> tuple:
        return ("dual", self.base.signature)

    def _lt(self, x: Row, y: Row) -> bool:
        return self.base._lt(y, x)

    def is_chain(self) -> bool | None:
        return self.base.is_chain()

    def __repr__(self) -> str:
        return f"{self.base!r}^d"


def _require_same_attributes(kind: str, prefs: Sequence[Preference]) -> None:
    sets = {p.attribute_set for p in prefs}
    if len(sets) > 1:
        pretty = ", ".join(str(tuple(s)) for s in sets)
        raise ValueError(
            f"{kind} aggregation requires identical attribute sets, got {pretty}"
        )


def project_value(pref: Preference, value: Any) -> tuple:
    """Projection of an arbitrary accepted value onto ``pref``'s attributes."""
    from repro.core.preference import as_row

    return project(as_row(value, pref.attributes), pref.attributes)


# -- convenience factories (read like the paper) ----------------------------

def pareto(*prefs: Preference) -> ParetoPreference:
    """``pareto(P1, P2, ...)`` = ``P1 (x) P2 (x) ...``."""
    return ParetoPreference(prefs)


def prioritized(*prefs: Preference) -> PrioritizedPreference:
    """``prioritized(P1, P2, ...)`` = ``P1 & P2 & ...``."""
    return PrioritizedPreference(prefs)


def rank(
    combine: Callable[..., Any], *prefs: Preference, name: str | None = None
) -> RankPreference:
    """``rank(F, P1, ..., Pn)`` = ``rank(F)(P1, ..., Pn)``."""
    return RankPreference(combine, prefs, name=name)


def intersection(*prefs: Preference) -> IntersectionPreference:
    """``intersection(P1, P2)`` = ``P1 <> P2``."""
    return IntersectionPreference(prefs)


def union(*prefs: Preference) -> DisjointUnionPreference:
    """``union(P1, P2)`` = ``P1 + P2`` (ranges must be disjoint)."""
    return DisjointUnionPreference(prefs)


def linear_sum(
    first: Preference, second: Preference, attribute: str | None = None
) -> LinearSumPreference:
    """``linear_sum(P1, P2)`` = ``P1 (+) P2``."""
    return LinearSumPreference(first, second, attribute)


def dual(pref: Preference) -> DualPreference:
    """``dual(P)`` = ``P^d``."""
    return DualPreference(pref)


def _install_operators() -> None:
    """Operator sugar on :class:`Preference` (kept here to avoid cycles)."""

    def __and__(self: Preference, other: Preference) -> Preference:
        if isinstance(other, Preference):
            return PrioritizedPreference((self, other))
        return NotImplemented

    def __mul__(self: Preference, other: Preference) -> Preference:
        if isinstance(other, Preference):
            return ParetoPreference((self, other))
        return NotImplemented

    def __add__(self: Preference, other: Preference) -> Preference:
        if isinstance(other, Preference):
            return DisjointUnionPreference((self, other))
        return NotImplemented

    Preference.__and__ = __and__  # type: ignore[method-assign]
    Preference.__mul__ = __mul__  # type: ignore[method-assign]
    Preference.__add__ = __add__  # type: ignore[method-assign]


_install_operators()
