"""Numerical base preference constructors (Definition 7).

The constructor hierarchy in Section 3.4 makes AROUND, BETWEEN, LOWEST and
HIGHEST *sub-constructors* of SCORE, each obtained by fixing the scoring
function:

* ``BETWEEN  ~ SCORE with f(x) = -distance(x, [low, up])``
* ``AROUND   ~ BETWEEN with low = up``
* ``HIGHEST  ~ SCORE with f(x) = x``
* ``LOWEST   ~ SCORE with f(x) = -x``

The class layout mirrors that hierarchy: everything numerical derives from
:class:`ScorePreference`, so the query optimizer can treat *any* numerical
base preference uniformly via its score function (constructor
substitutability, Section 3.4).

All constructors work for any ordered type with subtraction — the paper
mentions SQL ``Date`` explicitly — not just floats.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.domains import Domain
from repro.core.preference import Preference, Row, as_row, project


class ScorePreference(Preference):
    """``SCORE(A, f)``: ``x <_P y  iff  f(x) < f(y)`` (Definition 7d).

    ``f`` maps a value of ``dom(A)`` to an ordered score.  When ``A`` has a
    single attribute, ``f`` receives the bare value; for multiple attributes
    it receives the projection tuple.  SCORE preferences need not be chains:
    values with equal scores are unranked.
    """

    def __init__(
        self,
        attributes: Sequence[str] | str,
        f: Callable[[Any], Any],
        name: str | None = None,
        domain: Domain | None = None,
    ):
        if isinstance(attributes, str):
            attributes = (attributes,)
        super().__init__(attributes, domain)
        self._f = f
        self._name = name if name is not None else getattr(f, "__name__", "f")

    @property
    def score_name(self) -> str:
        return self._name

    @property
    def signature(self) -> tuple:
        return ("score", self.attribute_set, self._name)

    def score(self, value: Any) -> Any:
        """The score ``f(value)``; accepts rows, scalars or tuples."""
        row = as_row(value, self.attributes)
        return self._score_row(row)

    def _score_row(self, row: Row) -> Any:
        if len(self.attributes) == 1:
            return self._f(row[self.attributes[0]])
        return self._f(project(row, self.attributes))

    def _lt(self, x: Row, y: Row) -> bool:
        return self._score_row(x) < self._score_row(y)

    def __repr__(self) -> str:
        return f"SCORE({', '.join(self.attributes)}, {self._name})"


def distance_to_point(value: Any, z: Any) -> Any:
    """``distance(v, z) := abs(v - z)`` (Definition 7a)."""
    return abs(value - z)


def distance_to_interval(value: Any, low: Any, up: Any) -> Any:
    """``distance(v, [low, up])`` (Definition 7b): 0 inside, gap outside."""
    if value < low:
        return low - value
    if value > up:
        return value - up
    return value - value  # a type-correct zero (works for dates, floats, ints)


class BetweenPreference(ScorePreference):
    """``BETWEEN(A, [low, up])``: inside the interval, else as close as possible.

    Definition 7b: ``x <_P y iff distance(x, [low,up]) > distance(y, [low,up])``,
    i.e. SCORE with ``f(v) = -distance(v, [low, up])``.  All values inside
    the interval are maximal and mutually unranked; equal-distance outsiders
    are unranked too.
    """

    def __init__(
        self, attribute: str, low: Any, up: Any, domain: Domain | None = None
    ):
        if up < low:
            raise ValueError(f"BETWEEN needs low <= up, got [{low!r}, {up!r}]")
        self.low = low
        self.up = up
        super().__init__(
            (attribute,),
            lambda v: -distance_to_interval(v, low, up),
            name=f"-distance(., [{low!r}, {up!r}])",
            domain=domain,
        )

    @property
    def attribute(self) -> str:
        return self.attributes[0]

    @property
    def signature(self) -> tuple:
        return ("between", self.attribute, self.low, self.up)

    def distance(self, value: Any) -> Any:
        """``distance(v, [low, up])`` — the DISTANCE quality function."""
        return distance_to_interval(value, self.low, self.up)

    def __repr__(self) -> str:
        return f"BETWEEN({self.attribute}, [{self.low!r}, {self.up!r}])"


class AroundPreference(BetweenPreference):
    """``AROUND(A, z)``: exactly ``z``, else as close as possible.

    Definition 7a; per the hierarchy this is BETWEEN with ``low = up = z``.
    Values equidistant from ``z`` on opposite sides are unranked.
    """

    def __init__(self, attribute: str, z: Any, domain: Domain | None = None):
        super().__init__(attribute, z, z, domain)
        self.z = z

    @property
    def signature(self) -> tuple:
        return ("around", self.attribute, self.z)

    def __repr__(self) -> str:
        return f"AROUND({self.attribute}, {self.z!r})"


class HighestPreference(ScorePreference):
    """``HIGHEST(A)``: as high as possible — a chain (Definition 7c)."""

    def __init__(self, attribute: str, domain: Domain | None = None):
        super().__init__((attribute,), _identity, name="x", domain=domain)

    @property
    def attribute(self) -> str:
        return self.attributes[0]

    @property
    def signature(self) -> tuple:
        return ("highest", self.attribute)

    def is_chain(self) -> bool | None:
        return True

    def __repr__(self) -> str:
        return f"HIGHEST({self.attribute})"


class LowestPreference(ScorePreference):
    """``LOWEST(A)``: as low as possible — a chain (Definition 7c)."""

    def __init__(self, attribute: str, domain: Domain | None = None):
        super().__init__((attribute,), _negate, name="-x", domain=domain)

    @property
    def attribute(self) -> str:
        return self.attributes[0]

    @property
    def signature(self) -> tuple:
        return ("lowest", self.attribute)

    def is_chain(self) -> bool | None:
        return True

    def __repr__(self) -> str:
        return f"LOWEST({self.attribute})"


def _identity(value: Any) -> Any:
    return value


def _negate(value: Any) -> Any:
    return -value


def score_function_of(pref: Preference) -> Callable[[Row], Any] | None:
    """A row -> score function when ``pref`` is score-representable, else None.

    Recognizes :class:`ScorePreference` and duals of score preferences (the
    dual of SCORE(f) is SCORE(-f) whenever scores support negation).  Used
    by the optimizer to pick sort-based evaluation.
    """
    from repro.core.constructors import DualPreference

    if isinstance(pref, ScorePreference):
        return lambda row: pref.score(row)
    if isinstance(pref, DualPreference):
        inner = score_function_of(pref.base)
        if inner is not None:
            return lambda row: -inner(row)
    return None
