"""Non-numerical base preference constructors (Definition 6).

POS, NEG, POS/NEG and POS/POS are all *layered* preferences: the domain is
partitioned into an ordered list of layers, earlier layers are better, and
two values are ranked iff they lie in different layers.  The class
:class:`LayeredPreference` captures this shape once; the four constructors
are thin, faithfully-named instantiations, and their level structure (the
paper states the levels explicitly for each constructor) falls out of the
layer index.

EXPLICIT (Definition 6e) is genuinely graph-shaped and gets its own class on
top of :mod:`repro.core.digraph`.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Sequence

from repro.core.digraph import CycleError, Digraph
from repro.core.domains import Domain, FiniteDomain
from repro.core.preference import Preference, Row


class Others:
    """Sentinel naming the catch-all layer ("any other value", Definition 6).

    Exactly one ``OTHERS`` layer may appear in a layered preference; if none
    is given, values outside every explicit layer are unranked against
    everything (they belong to no layer at all).
    """

    _instance: "Others | None" = None

    def __new__(cls) -> "Others":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "OTHERS"


#: The unique catch-all layer marker.
OTHERS = Others()


class LayeredPreference(Preference):
    """An ordered partition of a domain: earlier layers are better.

    ``x <_P y`` iff x's layer comes strictly after y's layer.  The *level*
    of a value (Definition 2) is its 1-based layer index, matching the level
    statements in Definition 6 (e.g. POS/NEG: POS on level 1, others on
    level 2, NEG on level 3).
    """

    def __init__(
        self,
        attribute: str,
        layers: Sequence[Iterable[Hashable] | Others],
        domain: Domain | None = None,
    ):
        super().__init__((attribute,), domain)
        if not layers:
            raise ValueError("a layered preference needs at least one layer")
        cooked: list[frozenset | Others] = []
        others_seen = 0
        for layer in layers:
            if isinstance(layer, Others):
                others_seen += 1
                cooked.append(OTHERS)
            else:
                cooked.append(frozenset(layer))
        if others_seen > 1:
            raise ValueError("at most one OTHERS layer is allowed")
        explicit = [l for l in cooked if not isinstance(l, Others)]
        union: set = set()
        for layer in explicit:
            overlap = union & layer
            if overlap:
                raise ValueError(
                    f"layers must be disjoint; {sorted(map(repr, overlap))} repeat"
                )
            union |= layer
        self._layers: tuple[frozenset | Others, ...] = tuple(cooked)
        self._explicit_values = frozenset(union)
        self._others_index = next(
            (i for i, l in enumerate(cooked) if isinstance(l, Others)), None
        )

    @property
    def attribute(self) -> str:
        return self.attributes[0]

    @property
    def layers(self) -> tuple[frozenset | Others, ...]:
        return self._layers

    @property
    def signature(self) -> tuple:
        parts = tuple(
            ("OTHERS",) if isinstance(l, Others) else ("set", l) for l in self._layers
        )
        return ("layered", self.attribute, parts)

    def layer_index(self, value: Any) -> int | None:
        """0-based layer of ``value``; ``None`` when it belongs to no layer."""
        for i, layer in enumerate(self._layers):
            if not isinstance(layer, Others) and value in layer:
                return i
        if self._others_index is not None and value not in self._explicit_values:
            return self._others_index
        return None

    def level(self, value: Any) -> int | None:
        """1-based quality level (Definition 2); best values are level 1."""
        idx = self.layer_index(value)
        return None if idx is None else idx + 1

    def _lt(self, x: Row, y: Row) -> bool:
        xi = self.layer_index(x[self.attribute])
        yi = self.layer_index(y[self.attribute])
        if xi is None or yi is None:
            return False
        return xi > yi

    def max_level(self) -> int:
        return len(self._layers)

    def __repr__(self) -> str:
        inner = ", ".join(
            "OTHERS" if isinstance(l, Others) else repr(set(l)) for l in self._layers
        )
        return f"LayeredPreference({self.attribute}, [{inner}])"


class PosPreference(LayeredPreference):
    """``POS(A, POS-set)``: favorites first, anything else second.

    Definition 6a: ``x <_P y  iff  x not in POS-set and y in POS-set``.
    """

    def __init__(
        self, attribute: str, pos_set: Iterable[Hashable], domain: Domain | None = None
    ):
        pos = frozenset(pos_set)
        if not pos:
            raise ValueError("POS needs a non-empty POS-set")
        super().__init__(attribute, [pos, OTHERS], domain)
        self.pos_set = pos

    @property
    def signature(self) -> tuple:
        return ("pos", self.attribute, self.pos_set)

    def __repr__(self) -> str:
        return f"POS({self.attribute}, {set(self.pos_set)!r})"


class NegPreference(LayeredPreference):
    """``NEG(A, NEG-set)``: dislikes last, anything else first.

    Definition 6b: ``x <_P y  iff  y not in NEG-set and x in NEG-set``.
    """

    def __init__(
        self, attribute: str, neg_set: Iterable[Hashable], domain: Domain | None = None
    ):
        neg = frozenset(neg_set)
        if not neg:
            raise ValueError("NEG needs a non-empty NEG-set")
        super().__init__(attribute, [OTHERS, neg], domain)
        self.neg_set = neg

    @property
    def signature(self) -> tuple:
        return ("neg", self.attribute, self.neg_set)

    def __repr__(self) -> str:
        return f"NEG({self.attribute}, {set(self.neg_set)!r})"


class PosNegPreference(LayeredPreference):
    """``POS/NEG(A, POS-set; NEG-set)``: favorites, then neutral, then dislikes.

    Definition 6c; POS-set and NEG-set must be disjoint.
    """

    def __init__(
        self,
        attribute: str,
        pos_set: Iterable[Hashable],
        neg_set: Iterable[Hashable],
        domain: Domain | None = None,
    ):
        pos, neg = frozenset(pos_set), frozenset(neg_set)
        super().__init__(attribute, [pos, OTHERS, neg], domain)
        self.pos_set = pos
        self.neg_set = neg

    @property
    def signature(self) -> tuple:
        return ("posneg", self.attribute, self.pos_set, self.neg_set)

    def __repr__(self) -> str:
        return (
            f"POS/NEG({self.attribute}, {set(self.pos_set)!r}; {set(self.neg_set)!r})"
        )


class PosPosPreference(LayeredPreference):
    """``POS/POS(A, POS1-set; POS2-set)``: favorites, alternatives, the rest.

    Definition 6d; POS1-set and POS2-set must be disjoint.
    """

    def __init__(
        self,
        attribute: str,
        pos1_set: Iterable[Hashable],
        pos2_set: Iterable[Hashable],
        domain: Domain | None = None,
    ):
        pos1, pos2 = frozenset(pos1_set), frozenset(pos2_set)
        super().__init__(attribute, [pos1, pos2, OTHERS], domain)
        self.pos1_set = pos1
        self.pos2_set = pos2

    @property
    def signature(self) -> tuple:
        return ("pospos", self.attribute, self.pos1_set, self.pos2_set)

    def __repr__(self) -> str:
        return (
            f"POS/POS({self.attribute}, {set(self.pos1_set)!r}; "
            f"{set(self.pos2_set)!r})"
        )


class ExplicitPreference(Preference):
    """``EXPLICIT(A, EXPLICIT-graph)``: a handcrafted finite preference.

    Definition 6e.  The edge list uses the paper's orientation
    ``(val_i, val_j)`` meaning ``val_i <_E val_j`` (val_j is better); the
    induced order is the transitive closure, and every value occurring in
    the graph is better than every other domain value.

    ``rank_others=False`` yields the *pure* induced order ``E = (V, <_E)``
    without the catch-all rule — this is the building block in the paper's
    linear-sum characterization ``EXPLICIT = E (+) other-values<->``.
    """

    def __init__(
        self,
        attribute: str,
        edges: Iterable[tuple[Hashable, Hashable]],
        domain: Domain | None = None,
        rank_others: bool = True,
    ):
        super().__init__((attribute,), domain)
        self._edges = tuple((worse, better) for worse, better in edges)
        if not self._edges:
            raise ValueError("EXPLICIT needs at least one better-than pair")
        graph = Digraph(self._edges)
        try:
            graph.ensure_acyclic()
        except CycleError as exc:
            raise ValueError(f"EXPLICIT-graph must be acyclic: {exc}") from exc
        self._graph = graph
        closure = graph.transitive_closure()
        self._closure_pairs = frozenset(closure.edges)
        self._range = frozenset(graph.nodes)
        self._levels = graph.longest_path_levels()
        self._height = max(self._levels.values()) if self._levels else 0
        self.rank_others = bool(rank_others)
        if self._domain is None:
            # The paper's V: the set of all values occurring in the graph.
            # When others are ranked the true domain is larger and unknown;
            # we record only what can be enumerated.
            self._known_values = FiniteDomain(graph.nodes)
        else:
            self._known_values = None

    @property
    def attribute(self) -> str:
        return self.attributes[0]

    @property
    def edges(self) -> tuple[tuple[Hashable, Hashable], ...]:
        return self._edges

    @property
    def graph_values(self) -> frozenset:
        """``V``: all values occurring in the EXPLICIT-graph (= range(<_E))."""
        return self._range

    @property
    def signature(self) -> tuple:
        return ("explicit", self.attribute, frozenset(self._edges), self.rank_others)

    def in_graph(self, value: Any) -> bool:
        return value in self._range

    def _lt(self, x: Row, y: Row) -> bool:
        xv, yv = x[self.attribute], y[self.attribute]
        if (xv, yv) in self._closure_pairs:
            return True
        if self.rank_others:
            return xv not in self._range and yv in self._range
        return False

    def level(self, value: Any) -> int | None:
        """Longest-path level inside the graph; others sit one level below.

        Matches Example 1: white/red level 1, yellow 2, green 3, and the
        unlisted colours (brown, black) on level 4 = graph height + 1.
        """
        if value in self._levels:
            return self._levels[value]
        if self.rank_others:
            return self._height + 1
        return None

    def max_level(self) -> int:
        return self._height + (1 if self.rank_others else 0)

    def __repr__(self) -> str:
        return (
            f"EXPLICIT({self.attribute}, {len(self._edges)} edges"
            f"{'' if self.rank_others else ', pure'})"
        )
