"""Better-than graphs (Definition 2): the visual face of a preference.

A better-than graph is the Hasse diagram of a (database) preference over a
finite set of values.  Edges here run from *worse* to *better*, mirroring
the paper's ``x <_P y`` notation; in the rendered diagrams better values sit
on smaller level numbers, with maximal values on level 1 — exactly like the
figures in Examples 1-7 of the paper.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.core.digraph import Digraph, levels_from_mapping
from repro.core.preference import Preference, as_row, project


class BetterThanGraph:
    """The better-than graph of a preference restricted to concrete values.

    Nodes are by default the *distinct projections* of the supplied values
    onto the preference's attributes (scalars for single-attribute
    preferences, tuples otherwise).  Optional ``labels`` give nodes friendly
    names, like the ``val1 .. val7`` of Example 2.

    ``node_attributes`` widens node identity beyond the preference's own
    attributes.  The paper's Example 4 draws the graph of ``P8 = P1 & P2``
    (attributes A1, A2) over tuples carrying A1, A2 *and* A3: ``val5`` and
    ``val6`` coincide on (A1, A2) yet appear as two nodes.  Passing
    ``node_attributes=("A1", "A2", "A3")`` reproduces exactly that figure;
    projection-equal nodes are then mutually unranked and share a level.
    """

    def __init__(
        self,
        pref: Preference,
        values: Iterable[Any],
        labels: Mapping[Any, str] | None = None,
        node_attributes: Sequence[str] | None = None,
    ):
        self.pref = pref
        attrs = pref.attributes
        node_attrs = tuple(node_attributes) if node_attributes else attrs
        missing = [a for a in attrs if a not in node_attrs]
        if missing:
            raise ValueError(
                f"node_attributes must cover the preference attributes; "
                f"missing {missing}"
            )
        single = len(node_attrs) == 1

        nodes: dict[Any, dict] = {}
        for value in values:
            row = as_row(value, node_attrs)
            proj = project(row, node_attrs)
            node = proj[0] if single else proj
            if node not in nodes:
                nodes[node] = row
        self._rows = nodes

        relation = Digraph(nodes=nodes)
        for worse, wrow in nodes.items():
            for better, brow in nodes.items():
                if worse is not better and pref._lt(wrow, brow):
                    relation.add_edge(worse, better)
        self._relation = relation
        self._hasse = relation.transitive_reduction()
        self._levels = relation.longest_path_levels()
        self._labels = dict(labels) if labels else {}

    # -- structure ----------------------------------------------------------

    @property
    def nodes(self) -> tuple[Any, ...]:
        return self._relation.nodes

    def edges(self) -> tuple[tuple[Any, Any], ...]:
        """All better-than pairs ``(worse, better)`` (the full order)."""
        return self._relation.edges

    def hasse_edges(self) -> tuple[tuple[Any, Any], ...]:
        """Covering pairs only — what the paper's figures draw."""
        return self._hasse.edges

    def maxima(self) -> list[Any]:
        """Maximal values (level 1): nothing in the graph is better."""
        return [n for n in self._relation.nodes if not self._relation.successors(n)]

    def minima(self) -> list[Any]:
        """Minimal values: nothing in the graph is worse."""
        return [n for n in self._relation.nodes if not self._relation.predecessors(n)]

    def level(self, node: Any) -> int:
        """Definition 2's level: 1 + edges on the longest path to a maximum."""
        return self._levels[node]

    def levels(self) -> dict[Any, int]:
        return dict(self._levels)

    def level_groups(self) -> dict[int, list[Any]]:
        """Nodes grouped by level, ascending — one paper figure row each."""
        return levels_from_mapping(self._levels)

    def height(self) -> int:
        """Number of levels (the depth of the diagram)."""
        return max(self._levels.values()) if self._levels else 0

    def unranked_pairs(self) -> list[tuple[Any, Any]]:
        """Unordered pairs with no directed path either way (Definition 2)."""
        out = []
        pool = list(self._relation.nodes)
        for i, a in enumerate(pool):
            for b in pool[i + 1:]:
                if not self._relation.has_edge(a, b) and not self._relation.has_edge(b, a):
                    out.append((a, b))
        return out

    def is_chain(self) -> bool:
        """Definition 3a restricted to these values: every pair is ranked."""
        return not self.unranked_pairs()

    def is_antichain(self) -> bool:
        return not self._relation.edges

    def chain_order(self) -> list[Any]:
        """Best-to-worst enumeration when the graph is a chain."""
        if not self.is_chain():
            raise ValueError("graph is not a chain")
        return sorted(self._relation.nodes, key=lambda n: self._levels[n])

    # -- display -------------------------------------------------------------

    def label(self, node: Any) -> str:
        return self._labels.get(node, str(node))

    def render(self) -> str:
        """A textual rendition of the figure: one line per level.

        Example 1's graph renders as::

            Level 1:  white  red
            Level 2:  yellow
            Level 3:  green
            Level 4:  brown  black
        """
        lines = []
        for level, members in self.level_groups().items():
            names = "  ".join(sorted(self.label(m) for m in members))
            lines.append(f"Level {level}:  {names}")
        return "\n".join(lines)

    def to_dot(self) -> str:
        """GraphViz DOT of the Hasse diagram (better values drawn on top)."""
        lines = ["digraph better_than {", "  rankdir=BT;"]
        for node in self._relation.nodes:
            lines.append(f'  "{self.label(node)}";')
        for worse, better in self._hasse.edges:
            lines.append(f'  "{self.label(worse)}" -> "{self.label(better)}";')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"BetterThanGraph({self.pref!r}, nodes={len(self._rows)}, "
            f"levels={self.height()})"
        )
