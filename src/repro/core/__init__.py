"""Core preference model: strict partial orders over attribute domains.

This package implements Sections 2 and 3 of Kiessling's *Foundations of
Preferences in Database Systems*: preferences as strict partial orders
(:class:`~repro.core.preference.Preference`), the non-numerical and numerical
base preference constructors, the complex constructors (Pareto, prioritized,
``rank(F)``, intersection, disjoint union, linear sum), better-than graphs,
and the constructor hierarchy.
"""

from repro.core.domains import (
    Domain,
    FiniteDomain,
    IntervalDomain,
    NumericDomain,
    ProductDomain,
    domain_of,
)
from repro.core.preference import (
    AntiChain,
    ChainPreference,
    Preference,
    Row,
    SubsetPreference,
    as_row,
    project,
)
from repro.core.base_nonnumerical import (
    ExplicitPreference,
    LayeredPreference,
    NegPreference,
    PosNegPreference,
    PosPosPreference,
    PosPreference,
)
from repro.core.base_numerical import (
    AroundPreference,
    BetweenPreference,
    HighestPreference,
    LowestPreference,
    ScorePreference,
)
from repro.core.constructors import (
    DisjointUnionPreference,
    DualPreference,
    IntersectionPreference,
    LinearSumPreference,
    ParetoPreference,
    PrioritizedPreference,
    RankPreference,
    dual,
    intersection,
    linear_sum,
    pareto,
    prioritized,
    rank,
    union,
)
from repro.core.describe import describe
from repro.core.graph import BetterThanGraph
from repro.core.validate import (
    StrictOrderViolation,
    check_strict_partial_order,
    is_strict_partial_order,
)

__all__ = [
    "AntiChain",
    "AroundPreference",
    "BetterThanGraph",
    "BetweenPreference",
    "ChainPreference",
    "DisjointUnionPreference",
    "Domain",
    "DualPreference",
    "ExplicitPreference",
    "FiniteDomain",
    "HighestPreference",
    "IntersectionPreference",
    "IntervalDomain",
    "LayeredPreference",
    "LinearSumPreference",
    "LowestPreference",
    "NegPreference",
    "NumericDomain",
    "ParetoPreference",
    "PosNegPreference",
    "PosPosPreference",
    "PosPreference",
    "Preference",
    "PrioritizedPreference",
    "ProductDomain",
    "RankPreference",
    "Row",
    "ScorePreference",
    "StrictOrderViolation",
    "SubsetPreference",
    "as_row",
    "check_strict_partial_order",
    "describe",
    "domain_of",
    "dual",
    "intersection",
    "is_strict_partial_order",
    "linear_sum",
    "pareto",
    "prioritized",
    "project",
    "rank",
    "union",
]
