"""Finite-domain validation of strict-partial-order semantics (Definition 1).

Proposition 1 guarantees that every preference term built from the library's
constructors denotes a strict partial order.  This module makes the claim
*checkable*: given any finite probe set of values, it verifies

* irreflexivity:  not (x <_P x),
* transitivity:   x <_P y and y <_P z  imply  x <_P z,
* asymmetry:      not (x <_P y and y <_P x)  — implied, but checked
  directly so violations produce the sharpest witness.

These checks power the property-based test-suite and are also exported for
users who define custom base preferences (the paper's extensibility story
assumes each ``basepref_i`` "is assured to represent a strict partial
order" — this is the assurance tool).
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable

from repro.core.preference import Preference, as_row


class StrictOrderViolation(AssertionError):
    """A witness that a relation is not a strict partial order."""

    def __init__(self, law: str, witness: tuple):
        self.law = law
        self.witness = witness
        pretty = ", ".join(map(repr, witness))
        super().__init__(f"{law} violated by ({pretty})")


def check_strict_partial_order(
    pref: Preference, values: Iterable[Any], check_asymmetry: bool = True
) -> None:
    """Raise :class:`StrictOrderViolation` on the first broken law.

    Cost is O(n^2) for irreflexivity/asymmetry and O(n^3) for transitivity,
    with n distinct projections — fine for the probe-sized domains used in
    validation and tests.
    """
    rows = _distinct_rows(pref, values)

    for x in rows:
        if pref._lt(x, x):
            raise StrictOrderViolation("irreflexivity", (x,))

    if check_asymmetry:
        for x, y in itertools.combinations(rows, 2):
            if pref._lt(x, y) and pref._lt(y, x):
                raise StrictOrderViolation("asymmetry", (x, y))

    lt = {}
    for i, x in enumerate(rows):
        for j, y in enumerate(rows):
            if i != j and pref._lt(x, y):
                lt[(i, j)] = True
    for (i, j) in lt:
        for k in range(len(rows)):
            if (j, k) in lt and (i, k) not in lt and i != k:
                raise StrictOrderViolation(
                    "transitivity", (rows[i], rows[j], rows[k])
                )


def is_strict_partial_order(pref: Preference, values: Iterable[Any]) -> bool:
    """Boolean form of :func:`check_strict_partial_order`."""
    try:
        check_strict_partial_order(pref, values)
    except StrictOrderViolation:
        return False
    return True


def is_chain_on(pref: Preference, values: Iterable[Any]) -> bool:
    """Definition 3a on a probe set: all distinct projections are ranked."""
    rows = _distinct_rows(pref, values)
    for x, y in itertools.combinations(rows, 2):
        if not pref._lt(x, y) and not pref._lt(y, x):
            return False
    return True

def is_antichain_on(pref: Preference, values: Iterable[Any]) -> bool:
    """Definition 3b on a probe set: no pair is ranked."""
    rows = _distinct_rows(pref, values)
    for x, y in itertools.combinations(rows, 2):
        if pref._lt(x, y) or pref._lt(y, x):
            return False
    return True


def range_on(pref: Preference, values: Iterable[Any]) -> set:
    """``range(<_P)`` (Definition 4) restricted to a probe set.

    The projections that participate in at least one better-than pair.
    """
    rows = _distinct_rows(pref, values)
    touched: set = set()
    for x, y in itertools.permutations(rows, 2):
        if pref._lt(x, y):
            touched.add(_proj_key(pref, x))
            touched.add(_proj_key(pref, y))
    return touched


def are_disjoint_on(
    p1: Preference, p2: Preference, values: Iterable[Any]
) -> bool:
    """Definition 4's disjointness of two preferences, on a probe set."""
    pool = list(values)
    return not (range_on(p1, pool) & range_on(p2, pool))


def _distinct_rows(pref: Preference, values: Iterable[Any]) -> list[dict]:
    seen: dict[tuple, dict] = {}
    for v in values:
        row = as_row(v, pref.attributes)
        seen.setdefault(_proj_key(pref, row), row)
    return list(seen.values())


def _proj_key(pref: Preference, row: dict) -> tuple:
    return tuple(row[a] for a in pref.attributes)
