"""Small directed-graph toolkit used by the preference model.

The paper draws preferences as 'better-than' graphs (Hasse diagrams,
Definition 2) and the EXPLICIT base constructor (Definition 6e) takes an
acyclic edge list whose transitive closure induces a strict partial order.
This module supplies exactly the graph machinery those features need:

* cycle detection (EXPLICIT graphs must be acyclic),
* transitive closure (the induced order ``<_E``),
* transitive reduction (Hasse diagrams show only covering edges),
* longest-path levels (Definition 2's quality notion: ``x`` is on level
  ``j`` if the longest path from ``x`` up to a maximal value has ``j - 1``
  edges).

Everything is implemented from scratch; the test suite cross-checks the
results against networkx as an independent oracle.

Edge direction convention: an edge ``(worse, better)`` mirrors the paper's
notation ``x <_P y``.  Functions that speak about "predecessors" in the
paper's figure sense (better values drawn above) therefore look at edge
*targets* here.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

Node = Hashable
Edge = tuple[Node, Node]


class CycleError(ValueError):
    """Raised when an edge list that must be acyclic contains a cycle."""

    def __init__(self, cycle: list[Node]):
        self.cycle = cycle
        pretty = " -> ".join(map(repr, cycle))
        super().__init__(f"graph contains a cycle: {pretty}")


class Digraph:
    """A minimal directed graph over hashable nodes.

    Nodes keep insertion order so derived artifacts (levels, closures,
    renderings) are deterministic.
    """

    def __init__(self, edges: Iterable[Edge] = (), nodes: Iterable[Node] = ()):
        self._succ: dict[Node, dict[Node, None]] = {}
        self._pred: dict[Node, dict[Node, None]] = {}
        for node in nodes:
            self.add_node(node)
        for tail, head in edges:
            self.add_edge(tail, head)

    # -- construction ------------------------------------------------------

    def add_node(self, node: Node) -> None:
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_edge(self, tail: Node, head: Node) -> None:
        self.add_node(tail)
        self.add_node(head)
        self._succ[tail][head] = None
        self._pred[head][tail] = None

    # -- inspection --------------------------------------------------------

    @property
    def nodes(self) -> tuple[Node, ...]:
        return tuple(self._succ)

    @property
    def edges(self) -> tuple[Edge, ...]:
        return tuple(
            (tail, head) for tail, heads in self._succ.items() for head in heads
        )

    def successors(self, node: Node) -> tuple[Node, ...]:
        return tuple(self._succ.get(node, ()))

    def predecessors(self, node: Node) -> tuple[Node, ...]:
        return tuple(self._pred.get(node, ()))

    def has_edge(self, tail: Node, head: Node) -> bool:
        return head in self._succ.get(tail, ())

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def out_degree(self, node: Node) -> int:
        return len(self._succ.get(node, ()))

    def in_degree(self, node: Node) -> int:
        return len(self._pred.get(node, ()))

    def sources(self) -> tuple[Node, ...]:
        """Nodes without incoming edges."""
        return tuple(n for n in self._succ if not self._pred[n])

    def sinks(self) -> tuple[Node, ...]:
        """Nodes without outgoing edges."""
        return tuple(n for n in self._succ if not self._succ[n])

    # -- algorithms --------------------------------------------------------

    def find_cycle(self) -> list[Node] | None:
        """Return one cycle as a node list (first == last), or ``None``."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[Node, int] = {n: WHITE for n in self._succ}
        stack: list[Node] = []

        def visit(start: Node) -> list[Node] | None:
            # Iterative DFS with an explicit path to report the cycle itself.
            path = [start]
            iters = [iter(self._succ[start])]
            color[start] = GRAY
            while path:
                try:
                    nxt = next(iters[-1])
                except StopIteration:
                    color[path.pop()] = BLACK
                    iters.pop()
                    continue
                if color[nxt] == GRAY:
                    return path[path.index(nxt):] + [nxt]
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    path.append(nxt)
                    iters.append(iter(self._succ[nxt]))
            return None

        for node in self._succ:
            if color[node] == WHITE:
                cycle = visit(node)
                if cycle is not None:
                    return cycle
        return None

    def is_acyclic(self) -> bool:
        return self.find_cycle() is None

    def ensure_acyclic(self) -> None:
        cycle = self.find_cycle()
        if cycle is not None:
            raise CycleError(cycle)

    def topological_order(self) -> list[Node]:
        """Kahn's algorithm; raises :class:`CycleError` on cycles."""
        in_deg = {n: self.in_degree(n) for n in self._succ}
        ready = [n for n in self._succ if in_deg[n] == 0]
        order: list[Node] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for nxt in self._succ[node]:
                in_deg[nxt] -= 1
                if in_deg[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self._succ):
            self.ensure_acyclic()  # raises with an actual cycle
        return order

    def transitive_closure(self) -> "Digraph":
        """The reachability graph: edge (a, b) iff a path a -> ... -> b exists."""
        self.ensure_acyclic()
        closure = Digraph(nodes=self.nodes)
        reach: dict[Node, set[Node]] = {}
        for node in reversed(self.topological_order()):
            reachable: set[Node] = set()
            for nxt in self._succ[node]:
                reachable.add(nxt)
                reachable |= reach[nxt]
            reach[node] = reachable
            for target in reachable:
                closure.add_edge(node, target)
        return closure

    def reachable_from(self, node: Node) -> set[Node]:
        """All nodes reachable from ``node`` (excluding ``node`` itself
        unless it lies on a cycle through itself, which acyclic use forbids).
        """
        seen: set[Node] = set()
        stack = list(self._succ.get(node, ()))
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self._succ[cur])
        return seen

    def transitive_reduction(self) -> "Digraph":
        """Hasse edges only: drop (a, c) when some path a -> b -> ... -> c exists.

        Standard algorithm for DAGs: an edge (a, c) is redundant iff c is
        reachable from some other successor b of a.
        """
        self.ensure_acyclic()
        reduced = Digraph(nodes=self.nodes)
        reach_cache: dict[Node, set[Node]] = {}

        def reach(n: Node) -> set[Node]:
            if n not in reach_cache:
                reach_cache[n] = self.reachable_from(n)
            return reach_cache[n]

        for tail in self._succ:
            succs = list(self._succ[tail])
            for head in succs:
                via_other = any(
                    head in reach(other) for other in succs if other != head
                )
                if not via_other:
                    reduced.add_edge(tail, head)
        return reduced

    def longest_path_levels(self) -> dict[Node, int]:
        """Levels per Definition 2, with edges pointing from worse to better.

        A node's level is ``1 +`` the number of edges on the longest path
        from it to any sink (sinks are the maximal elements when edges run
        worse -> better).  Maximal elements are therefore on level 1.
        """
        self.ensure_acyclic()
        levels: dict[Node, int] = {}
        for node in reversed(self.topological_order()):
            succs = self._succ[node]
            if not succs:
                levels[node] = 1
            else:
                levels[node] = 1 + max(levels[s] for s in succs)
        return levels

    def reverse(self) -> "Digraph":
        return Digraph(
            edges=((h, t) for t, h in self.edges), nodes=self.nodes
        )

    def __repr__(self) -> str:
        return f"Digraph(nodes={len(self)}, edges={len(self.edges)})"


def closure_pairs(edges: Iterable[Edge]) -> frozenset[Edge]:
    """Transitive closure of an edge list as a set of ordered pairs.

    Convenience wrapper used by EXPLICIT preferences: the induced order
    ``<_E`` of Definition 6e is exactly this closure.
    """
    graph = Digraph(edges)
    closed = graph.transitive_closure()
    return frozenset(closed.edges)


def levels_from_mapping(levels: Mapping[Node, int]) -> dict[int, list[Node]]:
    """Group a node->level mapping by level, ascending (1 = best)."""
    grouped: dict[int, list[Node]] = {}
    for node, level in levels.items():
        grouped.setdefault(level, []).append(node)
    return dict(sorted(grouped.items()))


def induced_subgraph(graph: Digraph, nodes: Iterable[Node]) -> Digraph:
    """The subgraph on ``nodes`` with all edges among them."""
    keep = set(nodes)
    sub = Digraph(nodes=(n for n in graph.nodes if n in keep))
    for tail, head in graph.edges:
        if tail in keep and head in keep:
            sub.add_edge(tail, head)
    return sub


def path_exists(graph: Digraph, source: Node, target: Node) -> bool:
    """True iff a directed path source -> ... -> target exists."""
    if source not in graph or target not in graph:
        return False
    return target in graph.reachable_from(source)


def all_pairs(nodes: Iterable[Node]) -> Iterator[Edge]:
    """All ordered pairs of distinct nodes (n * (n - 1) pairs)."""
    pool = list(nodes)
    for a in pool:
        for b in pool:
            if a is not b and a != b:
                yield (a, b)
