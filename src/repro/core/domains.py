"""Attribute domains: the ``dom(A)`` of the paper (Section 2).

A preference ``P = (A, <_P)`` is declared over a set of attribute names
``A = {A1, ..., Ak}`` whose associated domain is the Cartesian product
``dom(A1) x ... x dom(Ak)``.  The paper treats domains mostly implicitly;
this module makes them explicit so that

* finite domains can be enumerated (needed for better-than graphs over whole
  domains, for the algebra's equivalence checker, and for validating the
  preconditions of disjoint union / linear sum),
* numeric domains can report that ``<`` and ``-`` are available (needed by
  the numerical base preference constructors), and
* linear sums (Definition 12) can construct the union domain
  ``dom(A) := dom(A1) u dom(A2)``.

Domains are optional almost everywhere: preferences evaluate lazily on
whatever values a database set supplies, exactly as in the paper where the
"realm of wishes" may be much larger than any database instance.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence


class Domain:
    """Abstract domain of attribute values.

    Subclasses decide membership (:meth:`contains`) and, when possible,
    enumeration (:meth:`__iter__`).  A domain is *finite* when it can be
    enumerated.
    """

    #: Whether the domain can be exhaustively enumerated.
    is_finite: bool = False
    #: Whether values support ``<`` and ``-`` (numerical base preferences).
    is_numeric: bool = False

    def contains(self, value: Any) -> bool:
        raise NotImplementedError

    def __contains__(self, value: Any) -> bool:
        return self.contains(value)

    def __iter__(self) -> Iterator[Any]:
        raise TypeError(f"{type(self).__name__} is not enumerable")

    def values(self) -> tuple[Any, ...]:
        """All values of a finite domain, in a stable order."""
        if not self.is_finite:
            raise TypeError(f"{type(self).__name__} is not finite")
        return tuple(self)


class FiniteDomain(Domain):
    """An explicitly enumerated domain, e.g. ``dom(Color)``.

    Values keep their insertion order (first occurrence wins) so that graphs
    and reports are deterministic.
    """

    is_finite = True

    def __init__(self, values: Iterable[Any]):
        seen: dict[Any, None] = {}
        for value in values:
            if value not in seen:
                seen[value] = None
        self._values: tuple[Any, ...] = tuple(seen)
        self._value_set = frozenset(self._values)

    def contains(self, value: Any) -> bool:
        return value in self._value_set

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FiniteDomain):
            return NotImplemented
        return self._value_set == other._value_set

    def __hash__(self) -> int:
        return hash(self._value_set)

    def __repr__(self) -> str:
        preview = ", ".join(map(repr, self._values[:6]))
        if len(self._values) > 6:
            preview += ", ..."
        return f"FiniteDomain({{{preview}}})"

    def union(self, other: "FiniteDomain") -> "FiniteDomain":
        return FiniteDomain((*self._values, *other._values))

    def is_disjoint_from(self, other: "FiniteDomain") -> bool:
        return self._value_set.isdisjoint(other._value_set)


class NumericDomain(Domain):
    """An unbounded numeric domain such as Integer, Real or Decimal.

    Membership accepts anything that behaves like a real number (supports
    ``<`` and ``-`` against itself), which mirrors the paper's requirement
    that a total comparison operator and subtraction be predefined.
    """

    is_numeric = True

    def contains(self, value: Any) -> bool:
        try:
            value < value  # noqa: B015 - probing for comparability
            value - value
        except TypeError:
            return False
        return True

    def __repr__(self) -> str:
        return "NumericDomain()"


class IntervalDomain(Domain):
    """A bounded numeric domain ``[low, up]``.

    Useful for validating BETWEEN bounds and for generating workloads; it is
    numeric but not enumerable.
    """

    is_numeric = True

    def __init__(self, low: float, up: float):
        if up < low:
            raise ValueError(f"empty interval: [{low}, {up}]")
        self.low = low
        self.up = up

    def contains(self, value: Any) -> bool:
        try:
            return self.low <= value <= self.up
        except TypeError:
            return False

    def __repr__(self) -> str:
        return f"IntervalDomain({self.low!r}, {self.up!r})"


class ProductDomain(Domain):
    """Cartesian product ``dom(A1) x ... x dom(Ak)`` keyed by attribute name.

    Enumeration yields rows (dicts), matching the row-based value model used
    throughout the library.  The order of components is irrelevant to the
    semantics, as the paper stipulates; attribute names key everything.
    """

    def __init__(self, components: dict[str, Domain]):
        if not components:
            raise ValueError("a product domain needs at least one attribute")
        self._components = dict(components)
        self.is_finite = all(d.is_finite for d in self._components.values())

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(self._components)

    def component(self, attribute: str) -> Domain:
        return self._components[attribute]

    def contains(self, value: Any) -> bool:
        if not isinstance(value, dict):
            return False
        return all(
            attr in value and dom.contains(value[attr])
            for attr, dom in self._components.items()
        )

    def __iter__(self) -> Iterator[dict[str, Any]]:
        if not self.is_finite:
            raise TypeError("product over non-finite components is not enumerable")
        attrs = tuple(self._components)
        columns: Sequence[tuple[Any, ...]] = [
            tuple(self._components[a]) for a in attrs
        ]

        def recurse(i: int, partial: dict[str, Any]) -> Iterator[dict[str, Any]]:
            if i == len(attrs):
                yield dict(partial)
                return
            for v in columns[i]:
                partial[attrs[i]] = v
                yield from recurse(i + 1, partial)
            partial.pop(attrs[i], None)

        return recurse(0, {})

    def __repr__(self) -> str:
        inner = ", ".join(f"{a}: {d!r}" for a, d in self._components.items())
        return f"ProductDomain({{{inner}}})"


def domain_of(values: Iterable[Any]) -> FiniteDomain:
    """Build the finite domain spanned by observed ``values``.

    This is the canonical way to turn a database column into a domain when
    none was declared: the closed-world assumption of Section 5 says database
    sets capture the accessible state of the world.
    """
    return FiniteDomain(values)
