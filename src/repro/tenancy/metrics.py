"""Per-tenant serving metrics, bounded for millions of users.

One :class:`TenantMetrics` keeps a slot per *recently active* tenant —
query counts split by answer source (so hit rate is first-class), a
latency series with the same p50/p95/p99 window as the service-wide
metrics, live subscription counts, quota denials, and the tenant's
current profile version.  The slot table is LRU-bounded: when a new
tenant would exceed ``max_tracked``, the coldest slot folds into an
``evicted`` aggregate instead of growing without bound — totals stay
honest, per-tenant detail covers the working set.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.server.metrics import _LatencySeries


class _TenantSlot:
    __slots__ = (
        "queries", "view_hits", "plan_answers", "composed",
        "subscriptions", "quota_denials", "profile_version", "latency",
    )

    def __init__(self) -> None:
        self.queries = 0
        self.view_hits = 0
        self.plan_answers = 0
        self.composed = 0
        self.subscriptions = 0
        self.quota_denials = 0
        self.profile_version = 0
        self.latency = _LatencySeries()

    def to_dict(self) -> dict[str, Any]:
        hit_rate = self.view_hits / self.queries if self.queries else 0.0
        return {
            "queries": self.queries,
            "view_hits": self.view_hits,
            "plan_answers": self.plan_answers,
            "view_hit_rate": round(hit_rate, 4),
            "composed": self.composed,
            "subscriptions": self.subscriptions,
            "quota_denials": self.quota_denials,
            "profile_version": self.profile_version,
            "latency": self.latency.to_dict(),
        }


class TenantMetrics:
    """Bounded per-tenant counters (thread-safe)."""

    def __init__(self, max_tracked: int = 1024):
        if max_tracked < 1:
            raise ValueError("max_tracked must be >= 1")
        self.max_tracked = max_tracked
        self._lock = threading.Lock()
        self._slots: dict[str, _TenantSlot] = {}
        self._evicted_tenants = 0
        self._evicted = _TenantSlot()

    def _slot(self, tenant: str) -> _TenantSlot:
        slot = self._slots.pop(tenant, None)
        if slot is None:
            slot = _TenantSlot()
            while len(self._slots) >= self.max_tracked:
                cold = self._slots.pop(next(iter(self._slots)))
                self._fold(cold)
        self._slots[tenant] = slot  # reinsertion keeps LRU order
        return slot

    def _fold(self, cold: _TenantSlot) -> None:
        self._evicted_tenants += 1
        self._evicted.queries += cold.queries
        self._evicted.view_hits += cold.view_hits
        self._evicted.plan_answers += cold.plan_answers
        self._evicted.composed += cold.composed
        self._evicted.quota_denials += cold.quota_denials

    # -- recording --------------------------------------------------------

    def record_query(
        self, tenant: str, source: str, elapsed_ns: int, composed: bool
    ) -> None:
        with self._lock:
            slot = self._slot(tenant)
            slot.queries += 1
            if source == "view":
                slot.view_hits += 1
            else:
                slot.plan_answers += 1
            if composed:
                slot.composed += 1
            slot.latency.record(elapsed_ns)

    def record_subscription(self, tenant: str, delta: int) -> None:
        with self._lock:
            slot = self._slot(tenant)
            slot.subscriptions = max(0, slot.subscriptions + delta)

    def record_quota_denial(self, tenant: str) -> None:
        with self._lock:
            self._slot(tenant).quota_denials += 1

    def record_profile(self, tenant: str, version: int) -> None:
        with self._lock:
            self._slot(tenant).profile_version = version

    # -- introspection ----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            tenants = {t: s.to_dict() for t, s in self._slots.items()}
            queries = sum(s.queries for s in self._slots.values())
            hits = sum(s.view_hits for s in self._slots.values())
            queries += self._evicted.queries
            hits += self._evicted.view_hits
            return {
                "tracked": len(self._slots),
                "evicted_tenants": self._evicted_tenants,
                "total_queries": queries,
                "total_view_hits": hits,
                "view_hit_rate": round(hits / queries, 4) if queries else 0.0,
                "tenants": tenants,
            }
