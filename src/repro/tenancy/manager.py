"""The tenant manager: profiles x composition x shared views, in one seam.

:class:`TenantManager` is the multi-tenant face of one
:class:`~repro.server.service.PreferenceService`.  Per request it

1. resolves the calling tenant's profile term (:class:`~repro.tenancy
   .profiles.ProfileStore`),
2. composes it *over* the submitted base query — ``prio(user_pref,
   base_pref)``, the paper's personalization story (Definition 9: the
   profile dominates, the base term breaks ties) — via
   :meth:`~repro.query.api.PreferenceQuery.personalize`, which
   canonicalizes the composed term,
3. answers through the service's one planning pipeline, materializing the
   canonical term's continuous view on first sight (subject to per-tenant
   quotas and the LRU-bounded :class:`~repro.tenancy.shared
   .SharedViewIndex>`), so every later tenant with an algebraically
   equivalent term answers from the shared window.

Profile revisions migrate the tenant's live subscriptions: when the
tenant is the sole pinner of the old view, the view is revised *in
place* through :meth:`~repro.server.views.ViewRegistry.revise` — the
delta classifies through :func:`~repro.query.revision.classify_revision`
and restarts from the cheapest sound point.  When the old view is shared
(other tenants pinned it), it must not be disturbed: the new canonical
term materializes separately and the migration delta is the exact row
diff between the two windows.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.core.preference import Preference
from repro.core.constructors import PrioritizedPreference
from repro.algebra.equivalence import canonical_form
from repro.engineering.serialization import (
    SerializationError,
    preference_to_dict,
)
from repro.query.incremental import BMODelta, _diff
from repro.server.views import ContinuousView, ViewSpec
from repro.tenancy.metrics import TenantMetrics
from repro.tenancy.profiles import (
    ProfileStore,
    TenancyError,
    TenantProfile,
    valid_tenant,
)
from repro.tenancy.shared import SharedViewIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.query.api import PreferenceQuery
    from repro.server.service import PreferenceService, QueryAnswer


@dataclass
class Migration:
    """One migrated subscription after a profile revision.

    Shape-compatible with :class:`~repro.server.service.ReviseAnswer`:
    the server re-points subscriptions ``old_key -> new_key``, then
    pushes ``delta`` to them.
    """

    summary: dict[str, Any]
    old_key: tuple
    new_key: tuple
    delta: BMODelta
    view: ContinuousView


class _TenantSub:
    """The recomposition recipe of one tenant subscription."""

    __slots__ = ("spec", "relation", "base", "term", "count")

    def __init__(
        self,
        spec: ViewSpec,
        relation: str,
        base: Preference | None,
        term: str | None,
    ):
        self.spec = spec          # the composed, canonical spec served now
        self.relation = relation
        self.base = base          # the submitted base term (may be None)
        self.term = term          # the profile term name (None = default)
        self.count = 1


class TenantManager:
    """Multi-tenant profiles, composition, and shared-view accounting."""

    def __init__(
        self,
        service: "PreferenceService",
        max_views_per_tenant: int = 8,
        max_subscriptions_per_tenant: int = 16,
        shared_view_capacity: int = 256,
    ):
        self.service = service
        self.max_views_per_tenant = max_views_per_tenant
        self.max_subscriptions_per_tenant = max_subscriptions_per_tenant
        binding = getattr(service.session, "storage", None)
        self.profiles = ProfileStore(binding, dict(service.session.functions))
        self.shared = SharedViewIndex(service.views, shared_view_capacity)
        self.metrics = TenantMetrics()
        self._lock = threading.RLock()
        #: (tenant, view key) -> recomposition recipe + refcount
        self._subs: dict[tuple[str, tuple], _TenantSub] = {}

    # -- composition ------------------------------------------------------

    def compose(
        self,
        q: "PreferenceQuery",
        tenant: str,
        term: str | None = None,
    ) -> tuple["PreferenceQuery", bool]:
        """The query personalized for ``tenant``; also whether a profile
        term was actually composed in."""
        pref = self.profiles.resolve(tenant, term)
        return q.personalize(pref), pref is not None

    def _composed_pref(
        self, tenant: str, base: Preference | None, term: str | None
    ) -> Preference:
        """``prio(profile, base)`` canonicalized, outside a query object."""
        pref = self.profiles.resolve(tenant, term)
        if pref is None and base is None:
            raise TenancyError(
                f"tenant {tenant!r} has no applicable profile term and no "
                "base preference was given"
            )
        if pref is None:
            full = base
        elif base is None:
            full = pref
        else:
            full = PrioritizedPreference((pref, base))
        assert full is not None
        return canonical_form(full)

    # -- queries ----------------------------------------------------------

    def query(
        self,
        tenant: str,
        sql: str | None = None,
        spec: Mapping[str, Any] | None = None,
        term: str | None = None,
    ) -> "QueryAnswer":
        """Answer one personalized query, sharing views across tenants.

        View-shaped canonical terms materialize on first sight (no
        sighting threshold — the whole point is that the *next*
        equivalent tenant hits the window), unless the tenant is over its
        view quota, in which case the query still answers — from a fresh
        plan — and the denial is counted, without evicting anyone else's
        views.
        """
        tenant = valid_tenant(tenant)
        q = self.service.build_query(sql, spec)
        q, composed = self.compose(q, tenant, term)
        relation = self.service._relation_of(q)
        view_spec = self.service._view_spec_of(q, relation)
        seeded = False
        if view_spec is not None and self.service.views.get(view_spec) is None:
            if self.shared.created_count(tenant) >= self.max_views_per_tenant:
                self.metrics.record_quota_denial(tenant)
                view_spec = None  # over quota: plan-answer, touch nothing
            else:
                self.service._materialize(view_spec)
                self.shared.track(view_spec, tenant)
                seeded = True
                for dropped in self.shared.evict_overflow():
                    self.service._forget_view(dropped)
        answer = self.service.answer(q, auto_view=False)
        # The query that paid for the seeding is honestly a miss — hit
        # rate measures how often a tenant rides an *existing* window.
        hit = answer.source == "view" and not seeded
        if view_spec is not None:
            self.shared.note(view_spec, tenant, hit=hit)
        self.metrics.record_query(
            tenant, "view" if hit else "plan", answer.elapsed_ns, composed
        )
        return answer

    def explain(
        self,
        tenant: str,
        sql: str | None = None,
        spec: Mapping[str, Any] | None = None,
        term: str | None = None,
    ) -> str:
        tenant = valid_tenant(tenant)
        q = self.service.build_query(sql, spec)
        q, _ = self.compose(q, tenant, term)
        return self.service.explain_query(q)

    # -- subscriptions ----------------------------------------------------

    def subscribe(
        self,
        tenant: str,
        relation: str,
        prefer: Preference | Mapping[str, Any] | None = None,
        groupby: Sequence[str] = (),
        top: int | None = None,
        ties: str = "strict",
        term: str | None = None,
    ) -> ContinuousView:
        """Materialize (or join) the tenant's composed continuous view,
        pinned against eviction for the life of the subscription."""
        tenant = valid_tenant(tenant)
        with self._lock:
            held = sum(
                s.count for (t, _), s in self._subs.items() if t == tenant
            )
            if held >= self.max_subscriptions_per_tenant:
                self.metrics.record_quota_denial(tenant)
                raise TenancyError(
                    f"tenant {tenant!r} is at its subscription quota "
                    f"({self.max_subscriptions_per_tenant})"
                )
        base = self.service._pref(prefer) if prefer is not None else None
        full = self._composed_pref(tenant, base, term)
        spec = ViewSpec(relation.lower(), full, tuple(groupby), top, ties)
        view = self.service._materialize(spec)
        with self._lock:
            self.shared.pin(view.spec, tenant)
            key = (tenant, view.spec.key)
            sub = self._subs.get(key)
            if sub is None:
                self._subs[key] = _TenantSub(
                    view.spec, relation.lower(), base, term
                )
            else:
                sub.count += 1
        self.metrics.record_subscription(tenant, +1)
        for dropped in self.shared.evict_overflow():
            self.service._forget_view(dropped)
        return view

    def release(self, tenant: str, view_key: tuple) -> None:
        """Drop one subscription hold (unsubscribe / disconnect)."""
        with self._lock:
            key = (tenant, view_key)
            sub = self._subs.get(key)
            if sub is None:
                return
            sub.count -= 1
            if sub.count <= 0:
                del self._subs[key]
            self.shared.unpin(view_key, tenant)
        self.metrics.record_subscription(tenant, -1)

    # -- profile writes + live migration ----------------------------------

    def set_profile(
        self,
        tenant: str,
        name: str,
        prefer: Mapping[str, Any],
        default: bool = False,
    ) -> tuple[TenantProfile, list[Migration]]:
        profile = self.profiles.set(tenant, name, prefer, default=default)
        migrations = self._migrate(tenant)
        self.metrics.record_profile(tenant, profile.version)
        return profile, migrations

    def merge_profile(
        self,
        tenant: str,
        terms: Mapping[str, Mapping[str, Any]],
        default: str | None = None,
    ) -> tuple[TenantProfile, list[Migration]]:
        profile = self.profiles.merge(tenant, terms, default=default)
        migrations = self._migrate(tenant)
        self.metrics.record_profile(tenant, profile.version)
        return profile, migrations

    def delete_profile(
        self, tenant: str, name: str | None = None
    ) -> tuple[TenantProfile | None, list[Migration]]:
        profile = self.profiles.delete(tenant, name)
        migrations = self._migrate(tenant)
        self.metrics.record_profile(
            tenant, profile.version if profile is not None else 0
        )
        return profile, migrations

    def _migrate(self, tenant: str) -> list[Migration]:
        """Re-point the tenant's live subscriptions at the revised
        profile's composed views; returns one migration per moved view."""
        with self._lock:
            pending = [
                (key, sub) for (t, key), sub in list(self._subs.items())
                if t == tenant
            ]
        out: list[Migration] = []
        for old_key, sub in pending:
            try:
                new_pref = self._composed_pref(tenant, sub.base, sub.term)
            except TenancyError:
                # The profile term this subscription composed with is
                # gone and there is no base to fall back to — the old
                # view keeps serving unchanged (deleting a profile must
                # not silently kill a live stream).
                continue
            new_spec = ViewSpec(
                sub.relation, new_pref, sub.spec.groupby,
                sub.spec.top, sub.spec.ties,
            )
            if new_spec.key == old_key:
                continue
            migration = self._migrate_one(tenant, old_key, sub, new_spec)
            if migration is not None:
                out.append(migration)
        return out

    def _migrate_one(
        self,
        tenant: str,
        old_key: tuple,
        sub: _TenantSub,
        new_spec: ViewSpec,
    ) -> Migration | None:
        sole = self.shared.is_sole_pinner(old_key, tenant)
        target_exists = self.service.views.get(new_spec) is not None
        if sole and not target_exists:
            # Nobody else subscribes to the old view: revise it in place,
            # restarting from the classified delta's cheapest sound point.
            answer = self.service.revise(
                sub.spec.relation, sub.spec.pref, new_spec.pref,
                groupby=sub.spec.groupby, top=sub.spec.top,
                ties=sub.spec.ties,
            )
            with self._lock:
                self.shared.rekey(old_key, answer.view.spec)
                self._move_sub(tenant, old_key, answer.view.spec, sub)
            return Migration(
                dict(answer.summary), answer.old_key, answer.new_key,
                answer.delta, answer.view,
            )
        # The old view is shared (or the target already lives): leave it
        # alone, join/materialize the new canonical view, and push the
        # exact window diff as the migration delta.
        new_view = self.service._materialize(new_spec)
        old_view = self.service.views.get(sub.spec)
        start = time.perf_counter_ns()
        if old_view is not None:
            delta = _diff(old_view.rows(), new_view.rows())
        else:
            delta = _diff([], new_view.rows())
        elapsed = time.perf_counter_ns() - start
        with self._lock:
            self.shared.unpin(old_key, tenant)
            self.shared.pin(new_view.spec, tenant)
            self._move_sub(tenant, old_key, new_view.spec, sub)
        summary = {
            "relation": new_spec.relation,
            "strategy": "rebind",
            "entered": len(delta.entered),
            "exited": len(delta.exited),
            "version": new_view.version,
            "view": new_view.spec.describe(),
            "elapsed_ns": elapsed,
        }
        for dropped in self.shared.evict_overflow():
            self.service._forget_view(dropped)
        return Migration(
            summary, old_key, new_view.spec.key, delta, new_view
        )

    def _move_sub(
        self,
        tenant: str,
        old_key: tuple,
        new_spec: ViewSpec,
        sub: _TenantSub,
    ) -> None:
        # Callers hold self._lock.
        self._subs.pop((tenant, old_key), None)
        sub.spec = new_spec
        existing = self._subs.get((tenant, new_spec.key))
        if existing is not None:
            existing.count += sub.count
        else:
            self._subs[(tenant, new_spec.key)] = sub

    def rebind_key(self, old_key: tuple, new_spec: ViewSpec) -> None:
        """Follow an externally revised view (the server's ``revise`` op):
        every tenant's pins and subscription records move to the new key."""
        if old_key == new_spec.key:
            return
        with self._lock:
            self.shared.rekey(old_key, new_spec)
            for (tenant, key) in [
                k for k in self._subs if k[1] == old_key
            ]:
                sub = self._subs[(tenant, key)]
                self._move_sub(tenant, old_key, new_spec, sub)

    # -- wire helpers -----------------------------------------------------

    def profile_payload(self, tenant: str) -> dict[str, Any]:
        """The full profile in wire form (:class:`TenancyError` if none)."""
        profile = self.profiles.get(tenant)
        if profile is None:
            raise TenancyError(f"tenant {tenant!r} has no profile")
        return profile.to_dict()

    @staticmethod
    def term_payload(pref: Preference) -> dict[str, Any] | None:
        try:
            return preference_to_dict(pref)
        except SerializationError:
            return None

    # -- introspection ----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            subscriptions = sum(s.count for s in self._subs.values())
        return {
            "profiles": len(self.profiles),
            "subscriptions": subscriptions,
            "shared_views": self.shared.stats(),
            "quotas": {
                "max_views_per_tenant": self.max_views_per_tenant,
                "max_subscriptions_per_tenant":
                    self.max_subscriptions_per_tenant,
            },
            "tenants": self.metrics.snapshot(),
        }
