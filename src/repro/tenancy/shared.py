"""The shared-view index: canonical terms -> one continuous view, LRU-bounded.

The scale play of the tenancy layer: tenant queries canonicalize their
composed preference terms (:func:`repro.algebra.equivalence
.canonical_form`), so algebraically equivalent terms — commuted Pareto
arms, laundered duplicates, simplifiable prioritized chains — key the
*same* :class:`~repro.server.views.ViewSpec` and therefore hit the same
:class:`~repro.server.views.ContinuousView`.  10k users with a handful of
equivalent profile shapes share a handful of maintained windows.

The index tracks, per registry key: which tenant caused the
materialization (quota attribution), which tenants hold subscription pins
(pinned views are never evicted), and hit/recency counters driving LRU
eviction back to ``capacity``.  Teardown is *resurrection-safe*: an
evicted view simply vanishes from the registry, and the next query for
its canonical term re-materializes it from the current catalog snapshot —
a resurrected view can never serve stale rows, because seeding always
reads the live relation, and never cross-tenant rows, because keys are
exact structural identities of the canonicalized term.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.server.views import ViewRegistry, ViewSpec


class _SharedEntry:
    __slots__ = ("spec", "creator", "pins", "hits", "misses", "last_used")

    def __init__(self, spec: ViewSpec, creator: str):
        self.spec = spec
        self.creator = creator
        #: tenant -> live subscription pin count (pinned => not evictable)
        self.pins: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.last_used = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "view": self.spec.describe(),
            "creator": self.creator,
            "pinned_by": sorted(self.pins),
            "hits": self.hits,
            "misses": self.misses,
        }


class SharedViewIndex:
    """Tenancy bookkeeping over one :class:`ViewRegistry` (thread-safe).

    The index only governs views the tenancy layer created — the
    service's own auto-materialized views stay outside its LRU.
    """

    def __init__(self, registry: ViewRegistry, capacity: int = 256):
        if capacity < 1:
            raise ValueError("shared view capacity must be >= 1")
        self.registry = registry
        self.capacity = capacity
        self._lock = threading.RLock()
        self._entries: dict[tuple, _SharedEntry] = {}
        #: tenant -> keys that tenant caused to materialize (quota base)
        self._created: dict[str, set[tuple]] = {}
        self._seq = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- tracking ---------------------------------------------------------

    def created_count(self, tenant: str) -> int:
        with self._lock:
            return len(self._created.get(tenant, ()))

    def track(self, spec: ViewSpec, tenant: str) -> None:
        """Adopt a freshly materialized view into the shared index,
        attributing its creation to ``tenant``."""
        with self._lock:
            entry = self._entries.get(spec.key)
            if entry is None:
                entry = _SharedEntry(spec, tenant)
                self._created.setdefault(tenant, set()).add(spec.key)
            self._touch(spec.key, entry)

    def note(self, spec: ViewSpec, tenant: str, hit: bool) -> None:
        """Record one tenant query against ``spec`` (LRU touch + counters)."""
        with self._lock:
            entry = self._entries.get(spec.key)
            if entry is None:
                return
            if hit:
                entry.hits += 1
            else:
                entry.misses += 1
            self._touch(spec.key, entry)

    def _touch(self, key: tuple, entry: _SharedEntry) -> None:
        # Reinsertion keeps the dict iteration order = LRU order.
        self._seq += 1
        entry.last_used = self._seq
        self._entries.pop(key, None)
        self._entries[key] = entry

    # -- pinning ----------------------------------------------------------

    def pin(self, spec: ViewSpec, tenant: str) -> None:
        """Hold the view against eviction for a live subscription."""
        with self._lock:
            entry = self._entries.get(spec.key)
            if entry is None:
                entry = _SharedEntry(spec, tenant)
                self._created.setdefault(tenant, set()).add(spec.key)
                self._entries[spec.key] = entry
            entry.pins[tenant] = entry.pins.get(tenant, 0) + 1
            self._touch(spec.key, entry)

    def unpin(self, key: tuple, tenant: str) -> None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return
            count = entry.pins.get(tenant, 0) - 1
            if count > 0:
                entry.pins[tenant] = count
            else:
                entry.pins.pop(tenant, None)

    def is_sole_pinner(self, key: tuple, tenant: str) -> bool:
        """True when ``tenant`` holds every pin on ``key`` (so an in-place
        view revision cannot disturb another tenant's subscription)."""
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and set(entry.pins) == {tenant}

    def rekey(self, old_key: tuple, new_spec: ViewSpec) -> None:
        """Follow an in-place view revision: the entry (pins, counters,
        creation attribution) moves to the revised spec's key."""
        with self._lock:
            entry = self._entries.pop(old_key, None)
            if entry is None:
                return
            for keys in self._created.values():
                if old_key in keys:
                    keys.discard(old_key)
                    keys.add(new_spec.key)
            entry.spec = new_spec
            self._entries[new_spec.key] = entry
            self._touch(new_spec.key, entry)

    # -- eviction ---------------------------------------------------------

    def evict_overflow(self) -> list[ViewSpec]:
        """Drop cold unpinned views until the index fits ``capacity``.

        Returns the evicted specs (the caller forgets their durable
        records).  Pinned views are *never* evicted — one tenant filling
        the index can therefore not tear down another tenant's
        subscription — so an index full of pins may transiently exceed
        capacity rather than break someone's live stream.
        """
        dropped: list[ViewSpec] = []
        with self._lock:
            if len(self._entries) <= self.capacity:
                return dropped
            for key in list(self._entries):  # iteration order = LRU order
                if len(self._entries) <= self.capacity:
                    break
                entry = self._entries[key]
                if entry.pins:
                    continue
                del self._entries[key]
                for keys in self._created.values():
                    keys.discard(key)
                self.registry.drop(entry.spec)
                self.evictions += 1
                dropped.append(entry.spec)
        return dropped

    def forget(self, key: tuple) -> None:
        """Remove bookkeeping for a view dropped outside the LRU path."""
        with self._lock:
            self._entries.pop(key, None)
            for keys in self._created.values():
                keys.discard(key)

    # -- introspection ----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            hits = sum(e.hits for e in self._entries.values())
            misses = sum(e.misses for e in self._entries.values())
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "pinned": sum(1 for e in self._entries.values() if e.pins),
                "hits": hits,
                "misses": misses,
                "evictions": self.evictions,
            }
