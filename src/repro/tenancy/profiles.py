"""Durable per-tenant preference profiles.

A *profile* is the serving-layer identity of one user: a key-value store
of named preference terms in the JSON wire format of
:mod:`repro.engineering.serialization` (the shape of LiuXin's DBPrefs
store), plus an optional default term name and a monotone version stamp.
Profiles persist through the same :class:`~repro.storage.binding
.CatalogStorage` write-ahead-log / snapshot path as relations and
continuous views, so they survive a server crash and restart.

Terms are validated at *write* time (a profile entry that cannot
deserialize would otherwise poison every later query) and deserialized
lazily at *resolve* time through a bounded per-(tenant, term) cache keyed
on the profile version — a hot tenant's term decodes once per profile
revision, not once per query.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.preference import Preference
from repro.engineering.serialization import (
    SerializationError,
    preference_from_dict,
)

#: Decoded (tenant, term) -> Preference entries kept before the coldest
#: is dropped; re-decoding is cheap, unbounded growth is not.
_RESOLVE_CACHE_CAP = 4096


class TenancyError(ValueError):
    """A tenant request the tenancy layer cannot honor (unknown tenant or
    term, malformed profile payload, exhausted quota).

    Protocol-visible: the server maps these to error responses, exactly
    like :class:`~repro.server.service.ServiceError`.
    """


def valid_tenant(tenant: Any) -> str:
    """The tenant id, validated: a non-empty printable string."""
    if not isinstance(tenant, str) or not tenant or len(tenant) > 256:
        raise TenancyError(
            f"tenant must be a non-empty string (<=256 chars), got {tenant!r}"
        )
    return tenant


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's stored preference terms (immutable snapshot)."""

    tenant: str
    terms: dict[str, dict[str, Any]] = field(default_factory=dict)
    default: str | None = None
    version: int = 0

    def to_dict(self) -> dict[str, Any]:
        """The JSON-safe durable form (also the wire form)."""
        return {
            "tenant": self.tenant,
            "terms": {name: dict(term) for name, term in self.terms.items()},
            "default": self.default,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TenantProfile":
        return cls(
            tenant=str(data["tenant"]),
            terms={
                str(name): dict(term)
                for name, term in dict(data.get("terms") or {}).items()
            },
            default=data.get("default"),
            version=int(data.get("version") or 0),
        )

    def summary(self) -> dict[str, Any]:
        """The compact envelope responses carry (no term bodies)."""
        return {
            "tenant": self.tenant,
            "terms": sorted(self.terms),
            "default": self.default,
            "version": self.version,
        }


class ProfileStore:
    """All tenant profiles of one service, durable when storage is.

    Thread-safe; every mutation bumps the tenant's profile version by
    exactly one (a :meth:`merge` of many terms is one revision — live
    subscriptions migrate once, not once per term).
    """

    def __init__(
        self,
        binding: Any = None,
        functions: Mapping[str, Any] | None = None,
    ):
        self._binding = binding
        self._functions = dict(functions or {})
        self._lock = threading.RLock()
        self._profiles: dict[str, TenantProfile] = {}
        #: (tenant, term-name) -> (profile version, decoded Preference)
        self._resolved: dict[tuple[str, str], tuple[int, Preference]] = {}
        if binding is not None:
            for payload in binding.pending_profiles():
                try:
                    profile = TenantProfile.from_dict(payload)
                except Exception:
                    continue  # a malformed record must not block recovery
                self._profiles[profile.tenant] = profile

    def __len__(self) -> int:
        with self._lock:
            return len(self._profiles)

    # -- reads ------------------------------------------------------------

    def get(self, tenant: str) -> TenantProfile | None:
        with self._lock:
            return self._profiles.get(valid_tenant(tenant))

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._profiles)

    def resolve(
        self, tenant: str, term: str | None = None
    ) -> Preference | None:
        """The tenant's named (or default) term as a live ``Preference``.

        ``None`` when the tenant has no profile or no default; naming a
        term the profile does not hold raises :class:`TenancyError` (a
        typo must not silently serve unpersonalized answers).
        """
        with self._lock:
            profile = self._profiles.get(valid_tenant(tenant))
            if profile is None:
                if term is not None:
                    raise TenancyError(f"tenant {tenant!r} has no profile")
                return None
            name = term if term is not None else profile.default
            if name is None:
                return None
            data = profile.terms.get(name)
            if data is None:
                raise TenancyError(
                    f"tenant {tenant!r} has no profile term {name!r}; "
                    f"available: {sorted(profile.terms)}"
                )
            cached = self._resolved.get((tenant, name))
            if cached is not None and cached[0] == profile.version:
                return cached[1]
            version = profile.version
        # Decode outside the lock — terms can be large.
        pref = self._decode(data)
        with self._lock:
            if len(self._resolved) >= _RESOLVE_CACHE_CAP:
                self._resolved.pop(next(iter(self._resolved)))
            self._resolved[(tenant, name)] = (version, pref)
        return pref

    def _decode(self, data: Mapping[str, Any]) -> Preference:
        try:
            return preference_from_dict(dict(data), self._functions)
        except SerializationError as exc:
            raise TenancyError(f"bad profile term: {exc}") from exc

    # -- writes -----------------------------------------------------------

    def set(
        self,
        tenant: str,
        name: str,
        prefer: Mapping[str, Any],
        default: bool = False,
    ) -> TenantProfile:
        """Store (or replace) one named term; bumps the profile version.

        The first term a tenant stores becomes the default unless one is
        already set; ``default=True`` re-points the default explicitly.
        """
        tenant = valid_tenant(tenant)
        if not isinstance(name, str) or not name:
            raise TenancyError(f"term name must be a non-empty string, got {name!r}")
        payload = dict(prefer)
        self._decode(payload)  # validate before persisting
        with self._lock:
            old = self._profiles.get(tenant) or TenantProfile(tenant)
            terms = dict(old.terms)
            terms[name] = payload
            chosen = old.default
            if default or chosen is None:
                chosen = name
            profile = TenantProfile(tenant, terms, chosen, old.version + 1)
            self._store(profile)
        return profile

    def merge(
        self,
        tenant: str,
        terms: Mapping[str, Mapping[str, Any]],
        default: str | None = None,
    ) -> TenantProfile:
        """Upsert many terms in one profile revision (one version bump)."""
        tenant = valid_tenant(tenant)
        if not terms and default is None:
            raise TenancyError("merge needs terms and/or a default")
        validated = {}
        for name, term in dict(terms).items():
            if not isinstance(name, str) or not name:
                raise TenancyError(
                    f"term name must be a non-empty string, got {name!r}"
                )
            payload = dict(term)
            self._decode(payload)
            validated[name] = payload
        with self._lock:
            old = self._profiles.get(tenant) or TenantProfile(tenant)
            merged = {**old.terms, **validated}
            chosen = default if default is not None else old.default
            if chosen is None and merged:
                chosen = sorted(validated)[0] if validated else None
            if chosen is not None and chosen not in merged:
                raise TenancyError(
                    f"default term {chosen!r} is not among the profile's "
                    f"terms {sorted(merged)}"
                )
            profile = TenantProfile(tenant, merged, chosen, old.version + 1)
            self._store(profile)
        return profile

    def delete(
        self, tenant: str, name: str | None = None
    ) -> TenantProfile | None:
        """Drop one named term (``name``) or the whole profile (``None``).

        Returns the surviving profile, or ``None`` when the profile is
        gone.  Deleting the default term clears the default.
        """
        tenant = valid_tenant(tenant)
        with self._lock:
            old = self._profiles.get(tenant)
            if old is None:
                raise TenancyError(f"tenant {tenant!r} has no profile")
            if name is None:
                del self._profiles[tenant]
                self._drop_resolved(tenant)
                if self._binding is not None:
                    self._binding.forget_profile(tenant)
                return None
            if name not in old.terms:
                raise TenancyError(
                    f"tenant {tenant!r} has no profile term {name!r}"
                )
            terms = {k: v for k, v in old.terms.items() if k != name}
            chosen = old.default if old.default != name else None
            profile = TenantProfile(tenant, terms, chosen, old.version + 1)
            self._store(profile)
        return profile

    def _store(self, profile: TenantProfile) -> None:
        self._profiles[profile.tenant] = profile
        self._drop_resolved(profile.tenant)
        if self._binding is not None:
            self._binding.record_profile(profile.to_dict())

    def _drop_resolved(self, tenant: str) -> None:
        for key in [k for k in self._resolved if k[0] == tenant]:
            del self._resolved[key]
