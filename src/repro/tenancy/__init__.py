"""Multi-tenant preference serving: profiles, composition, shared views.

The paper's personalization story at production scale.  Each tenant
(user) owns a durable *profile* of named preference terms
(:mod:`repro.tenancy.profiles`); at query time the server composes the
profile term over the submitted base query — ``prio(user_pref,
base_pref)`` — and answers through the ordinary planning pipeline
(:mod:`repro.tenancy.manager`).  Composed terms are canonicalized
(:func:`repro.algebra.equivalence.canonical_form`), so the thousands of
tenants whose profiles are algebraically equivalent share *one*
continuous view, LRU-bounded with subscription pinning
(:mod:`repro.tenancy.shared`) and measured per tenant
(:mod:`repro.tenancy.metrics`).
"""

from repro.tenancy.manager import Migration, TenantManager
from repro.tenancy.metrics import TenantMetrics
from repro.tenancy.profiles import (
    ProfileStore,
    TenancyError,
    TenantProfile,
    valid_tenant,
)
from repro.tenancy.shared import SharedViewIndex

__all__ = [
    "Migration",
    "ProfileStore",
    "SharedViewIndex",
    "TenancyError",
    "TenantManager",
    "TenantMetrics",
    "TenantProfile",
    "valid_tenant",
]
