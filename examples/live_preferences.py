"""Example 9 as a live service: BMO deltas pushed over the wire.

Run:  python examples/live_preferences.py

The paper's Example 9 (the fish tank) shows the BMO answer evolving
*non-monotonically* as tuples arrive: the shark widens the answer, the
turtle shrinks it to one.  Here the scenario runs as a mutation stream
against the preference server — one client replays the arrivals, a second
client holds a subscription to the continuous winnow view and prints every
``enter`` / ``exit`` delta as it is pushed.
"""

from repro.server import PreferenceClient, PreferenceService, run_in_thread

#: The standing wish: high fuel economy AND high insurance rating, Pareto.
WISH = {
    "type": "pareto",
    "children": [
        {"type": "highest", "attribute": "fuel_economy"},
        {"type": "highest", "attribute": "insurance_rating"},
    ],
}

#: Example 9's arrivals, in stream order.
ARRIVALS = [
    {"name": "frog", "fuel_economy": 100, "insurance_rating": 3},
    {"name": "cat", "fuel_economy": 50, "insurance_rating": 3},
    {"name": "shark", "fuel_economy": 50, "insurance_rating": 10},
    {"name": "turtle", "fuel_economy": 100, "insurance_rating": 10},
]


def main() -> None:
    service = PreferenceService({"animal": [ARRIVALS[0]]})
    handle = run_in_thread(service)
    print(f"preference server on 127.0.0.1:{handle.port}")

    subscriber = PreferenceClient(port=handle.port)
    mutator = PreferenceClient(port=handle.port)
    try:
        sub = subscriber.subscribe("animal", prefer=WISH, snapshot=True)
        print(f"subscribed to {sub['view']}")
        print(f"  initial best matches: "
              f"{sorted(r['name'] for r in sub['rows'])}")

        for arrival in ARRIVALS[1:]:
            mutator.insert("animal", [arrival])
            print(f"\n{arrival['name']} arrives "
                  f"(fe={arrival['fuel_economy']}, "
                  f"ir={arrival['insurance_rating']})")
            deltas = subscriber.deltas(timeout=0.5)
            if not deltas:
                print("  no visible change (dominated on arrival)")
            for delta in deltas:
                for row in delta["enter"]:
                    print(f"  + {row['name']} enters the BMO result")
                for row in delta["exit"]:
                    print(f"  - {row['name']} drops out")

        print("\nthe turtle drifts away again...")
        mutator.delete("animal", where=[["name", "=", "turtle"]])
        delta = subscriber.wait_delta(timeout=5.0)
        resurrected = sorted(r["name"] for r in delta["enter"])
        print(f"  - turtle drops out; {' and '.join(resurrected)} "
              f"are resurrected")

        final = mutator.query(spec={"relation": "animal", "prefer": WISH})
        print(f"\nfinal best matches: {sorted(r['name'] for r in final)}")
        stats = mutator.metrics()
        print(f"served {stats['queries']['total']} queries, "
              f"pushed {stats['deltas_pushed']} deltas, "
              f"{stats['latency']['view_refresh']['count']} view refreshes")

        # The non-monotonic shape Example 9 demonstrates, verified:
        assert sorted(r["name"] for r in final) == ["frog", "shark"]
    finally:
        subscriber.close()
        mutator.close()
        handle.stop()
        service.close()


if __name__ == "__main__":
    main()
