"""The paper's Example 6, end to end: preference engineering for a car shop.

Run:  python examples/car_shopping.py

Julia wants a used car; her friend Leslie has opinions; dealer Michael adds
domain knowledge and his own commission interest.  Conflicts are welcome —
the model treats them as unranked pairs, not errors.  The same scenario is
then expressed in Preference SQL, with quality control (BUT ONLY) and the
SQL92 rewriting the commercial product used.
"""

from repro.datasets.cars import example6_preferences, generate_cars
from repro.engineering import PreferenceRepository
from repro.psql import PreferenceSQL, parse, to_sql92
from repro.query import bmo
from repro.relations import Catalog


def main() -> None:
    cars = generate_cars(2000, seed=42)
    prefs = example6_preferences()

    # -- The wish lists of Example 6, straight from the paper -------------
    repo = PreferenceRepository()
    repo.save("julia", "wish", prefs["Q1"])
    repo.save("leslie", "colors", prefs["P8"])
    repo.save("michael", "domain", prefs["P6"])
    repo.save("michael", "commission", prefs["P7"])
    print(f"preference repository: {repo!r}")

    for name in ("Q1", "Q2", "Q1_star", "Q2_star"):
        best = bmo(prefs[name], cars)
        print(f"{name:8s} -> {len(best):3d} best matches "
              f"out of {len(cars)} cars")

    q2_best = bmo(prefs["Q2_star"], cars)
    print("\nthe final shortlist (Q2*):")
    print(q2_best.project(
        ["make", "category", "color", "price", "horsepower", "year"]
    ).head(10))

    # -- The same story in Preference SQL ---------------------------------
    psql = PreferenceSQL(Catalog({"car": cars}))
    query = """
        SELECT make, category, color, price, mileage FROM car
        WHERE price < 60000
        PREFERRING (category = 'cabriolet' ELSE category = 'roadster')
        AND transmission = 'automatic' AND horsepower AROUND 100
        CASCADE color <> 'gray' CASCADE LOWEST(price)
    """
    print("\nPreference SQL plan:")
    print(psql.explain(query))
    result = psql.execute(query)
    print(f"\n{len(result)} best matches:")
    print(result.head(10))

    # -- Quality supervision: accept only near-perfect horsepower ---------
    strict = query + " BUT ONLY DISTANCE(horsepower) <= 5"
    checked = psql.execute(strict)
    print(f"\nwith BUT ONLY DISTANCE(horsepower) <= 5: {len(checked)} rows "
          "(an empty answer is possible again - by explicit request)")

    # -- The plug-and-go SQL92 rewriting ----------------------------------
    print("\nSQL92 rewriting of the PREFERRING query:")
    print(to_sql92(parse(query)))


if __name__ == "__main__":
    main()
