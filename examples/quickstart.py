"""Quickstart: preferences as strict partial orders, queried under BMO.

Run:  python examples/quickstart.py

Walks the core loop of the library in five minutes: declare base
preferences, compose them with Pareto and prioritized accumulation, draw
the better-than graph, and ask a Best-Matches-Only query that never comes
back empty.
"""

from repro import AROUND, EXPLICIT, LOWEST, POS, pareto, prioritized
from repro.core.graph import BetterThanGraph
from repro.query import bmo, explain, execute
from repro.relations import Relation


def main() -> None:
    # -- 1. A database set (Section 5: the "reality" side of match-making).
    cars = Relation.from_dicts(
        "car",
        [
            {"id": 1, "color": "red", "price": 42000, "mileage": 20000},
            {"id": 2, "color": "black", "price": 38500, "mileage": 60000},
            {"id": 3, "color": "gray", "price": 39000, "mileage": 15000},
            {"id": 4, "color": "red", "price": 55000, "mileage": 5000},
            {"id": 5, "color": "blue", "price": 39500, "mileage": 45000},
        ],
    )
    print("catalog:")
    print(cars.head())

    # -- 2. Wishes (Section 3): base preferences...
    colour = POS("color", {"red", "black"})     # favourites first
    price = AROUND("price", 40000)              # close to 40k
    mileage = LOWEST("mileage")                 # the less driven the better

    # ...composed: colour and price matter equally, mileage breaks ties.
    wish = prioritized(pareto(colour, price), mileage)
    print(f"\nwish: {wish!r}")

    # -- 3. The BMO query: all best matches, only best matches (Def. 15).
    best = bmo(wish, cars)
    print("\nbest matches:")
    print(best.head())

    # -- 4. Even impossible wishes get cooperative answers - never empty.
    dreamer = AROUND("price", 1000)
    print("\nclosest to an impossible price of 1000:")
    print(bmo(dreamer, cars).head())

    # -- 5. Better-than graphs are the visual face of a preference (Def. 2).
    taste = EXPLICIT(
        "color", [("gray", "blue"), ("blue", "red"), ("blue", "black")]
    )
    graph = BetterThanGraph(taste, ["red", "black", "blue", "gray", "green"])
    print("\nhandcrafted colour taste (level 1 = best):")
    print(graph.render())

    # -- 6. The optimizer explains itself (which laws fired, which engine).
    print("\nquery plan:")
    print(explain(wish, cars))

    result = execute(wish, cars)
    assert result == best
    print("\noptimized execution agrees with the declarative evaluation.")


if __name__ == "__main__":
    main()
