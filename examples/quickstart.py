"""Quickstart: preferences as strict partial orders, queried under BMO.

Run:  python examples/quickstart.py

Walks the core loop of the library in five minutes: declare base
preferences, compose them with Pareto and prioritized accumulation, and ask
Best-Matches-Only queries through the unified fluent API — one lazily
planned ``PreferenceQuery`` pipeline shared by the builder, Preference SQL,
and Preference XPath.
"""

from repro import AROUND, EXPLICIT, HIGHEST, LOWEST, POS, Session, pareto, prioritized
from repro.core.graph import BetterThanGraph


def main() -> None:
    # -- 1. A session over a database set (Section 5: the "reality" side).
    s = Session({
        "car": [
            {"id": 1, "color": "red", "price": 42000, "mileage": 20000},
            {"id": 2, "color": "black", "price": 38500, "mileage": 60000},
            {"id": 3, "color": "gray", "price": 39000, "mileage": 15000},
            {"id": 4, "color": "red", "price": 55000, "mileage": 5000},
            {"id": 5, "color": "blue", "price": 39500, "mileage": 45000},
        ],
    })
    print("catalog:")
    print(s.catalog.get("car").head())

    # -- 2. Wishes (Section 3): base preferences...
    colour = POS("color", {"red", "black"})     # favourites first
    price = AROUND("price", 40000)              # close to 40k
    mileage = LOWEST("mileage")                 # the less driven the better

    # ...composed: colour and price matter equally, mileage breaks ties.
    wish = prioritized(pareto(colour, price), mileage)
    print(f"\nwish: {wish!r}")

    # -- 3. The BMO query: all best matches, only best matches (Def. 15).
    #    Nothing runs until a terminal method (.run/.explain/.iter/.to_sql).
    query = s.query("car").prefer(wish)
    best = query.run()
    print("\nbest matches:")
    print(best.head())

    # -- 4. Even impossible wishes get cooperative answers - never empty.
    print("\nclosest to an impossible price of 1000:")
    print(s.query("car").prefer(AROUND("price", 1000)).run().head())

    # -- 5. Builders chain freely: hard filters, grouping, top-k, SQL text.
    print("\nbest red-or-black car per color group, as SQL92:")
    grouped = s.query("car").prefer(price).groupby("color")
    print(grouped.to_sql())
    print(grouped.run().head())

    # -- 6. Preference SQL runs through the same pipeline (and plan cache).
    from_sql = s.sql(
        "SELECT * FROM car PREFERRING (color IN ('red', 'black')"
        " AND price AROUND 40000) PRIOR TO LOWEST(mileage)"
    )
    assert from_sql == best
    print("\nPreference SQL agrees with the fluent query.")

    # -- 7. Better-than graphs are the visual face of a preference (Def. 2).
    taste = EXPLICIT(
        "color", [("gray", "blue"), ("blue", "red"), ("blue", "black")]
    )
    graph = BetterThanGraph(taste, ["red", "black", "blue", "gray", "green"])
    print("\nhandcrafted colour taste (level 1 = best):")
    print(graph.render())

    # -- 8. The planner explains itself (which laws fired, which engine),
    #    and repeated queries hit the session's plan cache.
    print("\nquery plan:")
    print(query.explain())
    print(f"\nplan cache: {s.cache_info()}")

    # -- 9. Execution backends: large Pareto/skyline winnows run on the
    #    columnar engine (vectorized dominance over per-attribute score
    #    vectors) — same results, picked automatically, or steered with
    #    the .backend() knob ("auto" / "row" / "columnar").
    from repro.datasets.skyline_data import skyline_relation

    s.register("sky", skyline_relation("independent", 2000, 2))
    sky_wish = pareto(HIGHEST("d0"), LOWEST("d1"))
    sky_query = s.query("sky").prefer(sky_wish)
    print("\nskyline plan at 2000 rows (backend chosen by the planner):")
    print(sky_query.explain().splitlines()[0])
    assert sky_query.run() == sky_query.backend("row").run()
    print("columnar and row backends agree.")


if __name__ == "__main__":
    main()
