"""E-negotiation and preference mining — the paper's Section 7 roadmap.

Run:  python examples/negotiation.py

Two parties with openly conflicting wishes shop from one catalog.  Pareto
accumulation absorbs the conflict into unranked pairs — "a natural
reservoir to negotiate compromises" — and the negotiation helper ranks that
reservoir by fairness.  A preference miner then recovers a buyer profile
from the exact-match query log the buyer left behind.
"""

from repro import HIGHEST, LOWEST, POS, pareto
from repro.datasets.cars import generate_cars
from repro.datasets.logs import generate_query_log
from repro.engineering import (
    conflict_degree,
    mine_preferences,
    negotiate,
)
from repro.query import bmo


def main() -> None:
    cars = generate_cars(500, seed=9)

    # -- Two parties, openly in conflict ------------------------------------
    buyer = pareto(LOWEST("price"), POS("color", {"red", "black"}))
    dealer = pareto(HIGHEST("commission"), HIGHEST("price"))

    degree = conflict_degree(
        LOWEST("price"), HIGHEST("price"), cars.limit(40).rows()
    )
    print(f"price conflict degree between the parties: {degree:.2f}")

    outcome = negotiate([buyer, dealer], cars)
    print(f"immediate deals (best for both at once): "
          f"{len(outcome.immediate_deals)}")
    print(f"compromise frontier (joint Pareto BMO): {len(outcome.frontier)}")

    print("\nfairest three offers (minimize the worse party's regret):")
    for row in outcome.recommended(3):
        print(
            f"  {row['make']:9s} {row['color']:7s} price={row['price']:6d} "
            f"commission={row['commission']:5d}"
        )

    # -- Mining a profile from an exact-match query log ---------------------
    log = generate_query_log(
        250, seed=3, favorite_makes=("BMW", "Audi"), price_target=30000.0
    )
    profile = mine_preferences(log)
    print("\nmined buyer profile from the query log:")
    for attribute, pref in profile.preferences.items():
        print(f"  {attribute}: {pref!r}  (support {profile.support[attribute]})")

    mined_wish = profile.combined()
    assert mined_wish is not None
    shortlist = bmo(mined_wish, cars)
    print(f"\nshopping with the mined profile: {len(shortlist)} best matches")
    print(shortlist.project(["make", "price", "color"]).head(5))


if __name__ == "__main__":
    main()
