"""Trip planning with date preferences — the paper's second SQL example.

Run:  python examples/trip_planning.py

AROUND works on any ordered type with subtraction, dates included.  The
BUT ONLY clause supervises how far BMO was allowed to relax (two days, two
days of duration), and the ranked query model serves a k-best list for
browsing.
"""

import datetime

from repro import AROUND, LOWEST, SCORE, pareto, rank
from repro.datasets.trips import generate_trips
from repro.psql import PreferenceSQL
from repro.query import (
    QualityCondition,
    bmo,
    but_only,
    explain_quality,
    threshold_topk,
    top_k,
)
from repro.relations import Catalog


def main() -> None:
    trips = generate_trips(300, seed=23)
    print(f"catalog: {trips!r}")

    # -- Soft constraints over dates and durations -------------------------
    wish = pareto(
        AROUND("start_date", datetime.date(2001, 11, 23)),
        AROUND("duration", 14),
    )
    best = bmo(wish, trips)
    print(f"\nBMO result: {len(best)} candidate trips")
    print(best.project(["destination", "start_date", "duration", "price"]).head())

    # -- Quality supervision ------------------------------------------------
    conditions = [
        QualityCondition("distance", "start_date", "<=", 2),  # two days
        QualityCondition("distance", "duration", "<=", 2),
    ]
    checked = but_only(wish, best, conditions)
    print(f"\nwithin 2 days / 2 duration units: {len(checked)} trips")
    for line in explain_quality(wish, best.limit(3), conditions):
        print("  " + line)

    # -- The same query through Preference SQL ------------------------------
    psql = PreferenceSQL(Catalog({"trips": trips}))
    result = psql.execute(
        """
        SELECT destination, start_date, duration, price FROM trips
        PREFERRING start_date AROUND '2001/11/23' AND duration AROUND 14
        BUT ONLY DISTANCE(start_date) <= 2 AND DISTANCE(duration) <= 2
        """
    )
    print(f"\nPreference SQL agrees: {len(result)} trips")
    print(result.head())

    # -- k-best browsing (the ranked query model, Section 6.2) --------------
    cheap_and_soon = rank(
        lambda closeness, cheapness: 2.0 * closeness + cheapness,
        SCORE(
            "start_date",
            lambda d: -abs((d - datetime.date(2001, 11, 23)).days),
            name="closeness",
        ),
        SCORE("price", lambda p: -p / 100.0, name="cheapness"),
        name="deal_score",
    )
    shortlist = top_k(cheap_and_soon, trips, 5)
    print("\ntop-5 deals by combined score:")
    print(shortlist.project(["destination", "start_date", "price"]).head())

    ranked, stats = threshold_topk(cheap_and_soon, trips, 5)
    print(
        f"threshold algorithm matched the scan after inspecting only "
        f"{stats.objects_seen}/{len(trips)} trips"
    )


if __name__ == "__main__":
    main()
