"""A live marketplace: BMO results maintained under a stream of offers.

Run:  python examples/live_market.py

Example 9 of the paper shows BMO answers evolving *non-monotonically* as
the database grows — better data, not more data, improves the answer.
This example replays that behaviour at market scale with the incremental
maintainer, and prints the human-readable description of the running wish.
"""

import random

from repro import AROUND, LOWEST, pareto
from repro.core.describe import describe
from repro.datasets.cars import generate_cars
from repro.query import IncrementalBMO


def main() -> None:
    wish = pareto(AROUND("price", 25000), LOWEST("mileage"))
    print("the standing wish:")
    print(describe(wish))

    live = IncrementalBMO(wish)
    arrivals = generate_cars(800, seed=77).rows()
    random.Random(5).shuffle(arrivals)

    print("\noffers streaming in (snapshot every 100 arrivals):")
    print(f"{'seen':>6} {'maxima':>7} {'rejected on arrival':>20} "
          f"{'evicted later':>14}")
    sizes = []
    for i, offer in enumerate(arrivals, start=1):
        live.insert(offer)
        if i % 100 == 0:
            stats = live.stats
            sizes.append(live.result_size())
            print(
                f"{i:>6} {live.result_size():>7} "
                f"{stats['rejected']:>20} {stats['evicted']:>14}"
            )

    print(
        "\nnote the shape: the maxima count wobbles instead of growing — "
        "BMO adapts to data quality, not quantity (Example 9 writ large)."
    )
    assert max(sizes) < 100  # never floods

    print("\nthe current shortlist:")
    for row in sorted(live.result(), key=lambda r: r["price"])[:8]:
        print(
            f"  {row['make']:9s} price={row['price']:6d} "
            f"mileage={row['mileage']:6d} year={row['year']}"
        )

    # A dealer withdraws the best offer; somebody else gets resurrected.
    best = min(live.result(), key=lambda r: abs(r["price"] - 25000))
    before = live.result_size()
    live.remove(best)
    print(
        f"\nwithdrawing the closest-priced offer "
        f"(price={best['price']}): maxima {before} -> {live.result_size()}"
    )


if __name__ == "__main__":
    main()
