"""SRV-CMP: the serving layer against fresh planning on a 50k-row catalog.

Expected shape: a **view-answered repeat query** returns the maintained
window (O(result) dict copies) while a re-planned query pays the full
optimizer + winnow over 50k rows — the PR-4 acceptance criterion demands
>= 5x, measured ratios are orders of magnitude beyond that.  The
concurrent benchmark drives the real asyncio server over sockets with 8
clients issuing queries and mutations against the same relation and
asserts every answer matches the fresh plan execution.

Every benchmark asserts result parity inline, so this file doubles as a
serving-layer correctness run at scale.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.base_numerical import AroundPreference, HighestPreference
from repro.core.constructors import pareto
from repro.datasets.cars import generate_cars
from repro.query import optimizer
from repro.server import PreferenceClient, PreferenceService, run_in_thread

#: The acceptance-criterion catalog size.
N_ROWS = 50_000

#: The standing wish benchmarked throughout: a Pareto the row engine
#: cannot shortcut (AROUND has no columnar/score form).
PREF = pareto(
    AroundPreference("price", 30_000), HighestPreference("horsepower")
)

PREF_SPEC = {
    "type": "pareto",
    "children": [
        {"type": "around", "attribute": "price", "z": 30_000},
        {"type": "highest", "attribute": "horsepower"},
    ],
}


def _canon(rows):
    return sorted(tuple(sorted(r.items())) for r in rows)


@pytest.fixture(scope="module")
def service_50k():
    service = PreferenceService(
        {"car": generate_cars(N_ROWS, seed=11).rows()}
    )
    yield service
    service.close()


def _median_ns(fn, rounds=5):
    samples = []
    for _ in range(rounds):
        start = time.perf_counter_ns()
        fn()
        samples.append(time.perf_counter_ns() - start)
    samples.sort()
    return samples[len(samples) // 2]


def test_view_repeat_queries_5x_over_replanning(service_50k):
    """The PR-4 acceptance criterion, service-level."""
    spec = {"relation": "car", "prefer": PREF_SPEC}
    relation = service_50k.session.catalog.get("car")

    # Two sightings materialize the continuous view.
    first = service_50k.query(spec=spec)
    second = service_50k.query(spec=spec)
    assert first.source == "plan" and second.source == "view"

    fresh = optimizer.plan(PREF, relation).execute()
    # View answers are identical to a fresh plan execution.
    assert _canon(second.rows) == _canon(fresh.rows())

    planned_ns = _median_ns(
        lambda: optimizer.plan(PREF, relation).execute()
    )
    view_ns = _median_ns(lambda: service_50k.query(spec=spec))
    assert service_50k.query(spec=spec).source == "view"

    ratio = planned_ns / view_ns
    print(f"\nview={view_ns/1e6:.3f}ms replanned={planned_ns/1e6:.1f}ms "
          f"ratio={ratio:.1f}x")
    assert ratio >= 5.0, (
        f"view-answered repeat query only {ratio:.1f}x faster than "
        f"re-planning (need >= 5x)"
    )


def test_view_refresh_is_cheaper_than_replanning(service_50k):
    """Incremental maintenance under inserts stays far below replan cost."""
    view = service_50k.materialize("car", PREF_SPEC)
    template = service_50k.session.catalog.get("car").rows()[0]
    before = view.refreshes

    start = time.perf_counter_ns()
    for i in range(20):
        service_50k.insert("car", [dict(
            template, oid=2_000_000 + i, price=1_000_000 + i,
        )])
    elapsed = time.perf_counter_ns() - start

    assert view.refreshes == before + 20
    relation = service_50k.session.catalog.get("car")
    replan_ns = _median_ns(
        lambda: optimizer.plan(PREF, relation).execute(), rounds=3
    )
    per_mutation = elapsed / 20
    print(f"\nper-mutation (incl. refresh)={per_mutation/1e6:.2f}ms "
          f"replan={replan_ns/1e6:.1f}ms")
    # A full mutation round trip (catalog swap + view refresh) must beat
    # re-running the winnow, or continuous views would be pointless.
    assert per_mutation < replan_ns


def test_concurrent_clients_throughput(service_50k):
    """8 concurrent clients over real sockets against the 50k catalog."""
    handle = run_in_thread(service_50k)
    spec = {"relation": "car", "prefer": PREF_SPEC}
    expected = _canon(service_50k.query(spec=spec).rows)
    template = service_50k.session.catalog.get("car").rows()[0]
    errors: list[Exception] = []
    completed = []

    def worker(worker_id):
        try:
            with PreferenceClient(port=handle.port) as client:
                for round_no in range(5):
                    info = client.query_info(spec=spec)
                    got = _canon(info["rows"])
                    if got != expected and info["source"] == "view":
                        # Concurrent inserts below never beat the maxima,
                        # so the result set must not drift.
                        raise AssertionError("result drifted under load")
                    # Dominated rows: never visible in the benchmark query.
                    client.insert("car", [dict(
                        template,
                        oid=3_000_000 + worker_id * 100 + round_no,
                        price=1, horsepower=1,
                    )])
                completed.append(worker_id)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    start = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    elapsed = time.perf_counter() - start

    try:
        assert not errors, errors
        assert sorted(completed) == list(range(8))
        ops = 8 * 5 * 2  # one query + one mutation per round
        print(f"\n8 clients x 5 rounds: {ops} ops in {elapsed:.2f}s "
              f"({ops/elapsed:.0f} ops/s)")
        # Queries racing a mutation may legitimately fall back to the
        # plan path (the view is transiently stale), but the steady state
        # answers from the view.
        stats = service_50k.stats()
        assert stats["queries"]["from_view"] >= 1
    finally:
        handle.stop()
