"""Shared fixtures for the benchmark harness.

Every benchmark asserts its experiment's *correctness* result inline (the
same golden values as the test suite) and then times the operation, so a
benchmark run doubles as a reproduction run.  Session-scoped fixtures keep
dataset generation out of the timed paths.
"""

from __future__ import annotations

import pytest

from repro.datasets.cars import generate_cars
from repro.datasets.skyline_data import skyline_relation
from repro.datasets.trips import generate_trips
from repro.relations.relation import Relation


@pytest.fixture(scope="session")
def cars_1k() -> Relation:
    return generate_cars(1000, seed=11)


@pytest.fixture(scope="session")
def cars_5k() -> Relation:
    return generate_cars(5000, seed=11)


@pytest.fixture(scope="session")
def trips_200() -> Relation:
    return generate_trips(200, seed=23)


@pytest.fixture(scope="session")
def skyline_sets() -> dict:
    out = {}
    for kind in ("independent", "correlated", "anticorrelated"):
        for n in (1000,):
            for d in (2, 3, 5):
                out[(kind, n, d)] = skyline_relation(kind, n, d, seed=13)
    return out
