"""SEMANTIC-ELIM: constraint-driven winnow elimination vs. the full winnow.

The workload is the PR-6 acceptance criterion: 50k listings whose
``rating`` column is continuous, so table statistics derive
``key(rating)``.  The query is a prioritized chain headed by
``HIGHEST(rating)``:

    PREFERRING HIGHEST(rating) PRIOR TO
               (price AROUND 40000 AND HIGHEST(power))

The ``winnow_to_sort`` rule proves the chain head alone picks a single
best tuple (key projections are pairwise distinct, so the head's
best-matches set is a singleton and later stages never apply) and
replaces the whole dominance winnow with a one-pass column argmax
(``SortedWinnow``).  The canonical plan — the same query under
``optimize(False)`` — never consults the constraint registry, so it runs
the full SFS winnow; the acceptance criterion demands the semantic plan
beats it by >= 10x with identical rows.

Also covered: ``remove_redundant_winnow`` collapsing a key-bound winnow
to a pure identity when WHERE pins the key to one tuple.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.base_numerical import AroundPreference, HighestPreference
from repro.core.constructors import pareto, prioritized
from repro.session import Session

#: The acceptance-criterion dataset size.
N_ROWS = 50_000


def _listing_rows(n: int, seed: int = 23) -> list[dict]:
    rng = random.Random(seed)
    return [
        {
            # i + jitter < 0.5 keeps ratings pairwise distinct: the
            # statistics profile then derives key(rating).
            "rating": i + rng.random() * 0.5,
            "price": rng.uniform(0, 100_000),
            "power": rng.uniform(50, 400),
        }
        for i in range(n)
    ]


def _best_seconds(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def session():
    return Session({"listing": _listing_rows(N_ROWS)})


@pytest.fixture(scope="module")
def chain_query(session):
    return session.query("listing").prefer(prioritized(
        HighestPreference("rating"),
        pareto(AroundPreference("price", 40_000), HighestPreference("power")),
    ))


def test_semantic_elim_10x_over_unoptimized_50k(chain_query):
    """The PR-6 acceptance criterion: >= 10x on the key-headed chain."""
    q = chain_query
    text = q.explain()
    assert "winnow_to_sort" in text
    assert "key(rating)" in text  # constraint provenance is named

    optimized = q.plan()
    canonical = q.optimize(False).plan()

    assert optimized.execute().rows() == canonical.execute().rows()

    canonical_seconds = _best_seconds(canonical.execute)
    optimized_seconds = _best_seconds(optimized.execute)
    speedup = canonical_seconds / optimized_seconds
    assert speedup >= 10.0, (
        f"semantic {optimized_seconds:.4f}s vs canonical "
        f"{canonical_seconds:.4f}s — only {speedup:.1f}x"
    )


@pytest.mark.parametrize("mode", ["canonical", "semantic"])
def test_semantic_plans_50k(benchmark, chain_query, mode):
    """The same pair as individual benchmark entries (for BENCH reports)."""
    q = chain_query if mode == "semantic" else chain_query.optimize(False)
    plan = q.plan()
    reference = chain_query.optimize(False).plan().execute().rows()
    result = benchmark.pedantic(plan.execute, rounds=3, iterations=1)
    assert result.rows() == reference
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["result_size"] = len(reference)


def test_redundant_winnow_removed_under_key_equality(session):
    """WHERE pinning the key makes the winnow an identity: the
    ``remove_redundant_winnow`` rule drops the operator entirely."""
    target = session.catalog.get("listing").rows()[123]["rating"]
    q = (
        session.query("listing")
        .where(rating=target)
        .prefer(pareto(
            AroundPreference("price", 40_000), HighestPreference("power"),
        ))
    )
    text = q.explain()
    assert "remove_redundant_winnow" in text
    assert "key(rating)" in text
    rows = q.run().rows()
    assert rows == q.optimize(False).run().rows()
    assert len(rows) == 1
