"""PSQL: the Section 6.1 Preference SQL examples end to end.

Times parsing, planning and execution of the paper's two sample queries
against catalogs of realistic size, plus the SQL92 rewriting itself.
"""

import pytest

from repro.psql.executor import PreferenceSQL
from repro.psql.parser import parse
from repro.psql.sqlgen import to_sql92
from repro.relations.catalog import Catalog

CAR_QUERY = """
SELECT * FROM car WHERE make = 'Opel'
PREFERRING (category = 'roadster' ELSE category <> 'passenger') AND
price AROUND 40000 AND HIGHEST(horsepower)
CASCADE color = 'red' CASCADE LOWEST(mileage)
"""

TRIPS_QUERY = """
SELECT * FROM trips
PREFERRING start_date AROUND '2001/11/23' AND duration AROUND 14
BUT ONLY DISTANCE(start_date) <= 4 AND DISTANCE(duration) <= 2
"""


@pytest.fixture(scope="module")
def session(request):
    from repro.datasets.cars import generate_cars
    from repro.datasets.trips import generate_trips

    catalog = Catalog(
        {
            "car": generate_cars(2000, seed=11),
            "trips": generate_trips(300, seed=23),
        }
    )
    return PreferenceSQL(catalog)


def test_parse_car_query(benchmark):
    query = benchmark(lambda: parse(CAR_QUERY))
    assert query.table == "car" and len(query.cascades) == 2


def test_execute_car_query(benchmark, session):
    out = benchmark.pedantic(
        lambda: session.execute(CAR_QUERY), rounds=3, iterations=1
    )
    assert 0 < len(out) < 2000
    print(f"\n[PSQL] car query -> {len(out)} best matches")


def test_execute_trips_query(benchmark, session):
    out = benchmark.pedantic(
        lambda: session.execute(TRIPS_QUERY), rounds=3, iterations=1
    )
    # BUT ONLY may legitimately empty the answer; assert it ran and stayed
    # within the catalog.
    assert 0 <= len(out) <= 300
    print(f"\n[PSQL] trips query -> {len(out)} quality-checked matches")


def test_sql92_rewriting(benchmark):
    sql = benchmark(lambda: to_sql92(parse(CAR_QUERY)))
    assert "NOT EXISTS" in sql


def test_explain_overhead(benchmark, session):
    text = benchmark(lambda: session.explain(CAR_QUERY))
    assert "Scan[car]" in text
