"""FLT-P13: the filter-effect inequalities measured on realistic data.

Reproduces the paper's AND/OR reading: forming ``&`` strengthens the filter
(sizes shrink, like AND), forming ``(x)`` weakens it relative to the
prioritized orders (sizes grow, like OR), with BMO adapting in between.
"""

from repro.core.base_nonnumerical import PosPreference
from repro.core.base_numerical import AroundPreference, LowestPreference
from repro.core.constructors import pareto, prioritized
from repro.datasets.cars import generate_cars
from repro.query.bmo import result_size

UNION_ATTRS = ("color", "price")


def test_filter_strength_chain(benchmark):
    cars = generate_cars(1500, seed=11)
    p1 = PosPreference("color", {"red", "black"})
    p2 = AroundPreference("price", 25000)

    def measure():
        return {
            "P1": result_size(p1, cars, attributes=UNION_ATTRS),
            "P1 & P2": result_size(
                prioritized(p1, p2), cars, attributes=UNION_ATTRS
            ),
            "P2 & P1": result_size(
                prioritized(p2, p1), cars, attributes=UNION_ATTRS
            ),
            "P1 (x) P2": result_size(
                pareto(p1, p2), cars, attributes=UNION_ATTRS
            ),
        }

    sizes = benchmark.pedantic(measure, rounds=2, iterations=1)
    print(f"\n[FLT-P13] sizes: {sizes}")
    assert sizes["P1 & P2"] <= sizes["P1"]            # Prop 13c
    assert sizes["P1 & P2"] <= sizes["P1 (x) P2"]     # Prop 13d
    assert sizes["P2 & P1"] <= sizes["P1 (x) P2"]     # Prop 13d
    benchmark.extra_info.update(sizes)


def test_pareto_widens_with_dimensions(benchmark):
    cars = generate_cars(1500, seed=11)
    dims = [
        AroundPreference("price", 25000),
        LowestPreference("mileage"),
        AroundPreference("horsepower", 110),
    ]

    def measure():
        return [
            result_size(
                pareto(*dims[: k + 1]) if k else dims[0],
                cars,
                attributes=("price", "mileage", "horsepower"),
            )
            for k in range(3)
        ]

    series = benchmark.pedantic(measure, rounds=2, iterations=1)
    print(f"\n[FLT-P13] result sizes by Pareto width: {series}")
    assert series[0] <= series[1] <= series[2]
