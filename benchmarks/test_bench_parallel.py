"""PAR-CMP: partitioned winnow vs. single-thread columnar vs. row BNL.

Expected shape: on 200k-row skylines, partition-and-merge execution
(:mod:`repro.engine.parallel`) beats the single-thread columnar kernel by
>= 2x once at least 4 cores are visible — the dominance phase splits
across workers and the cross-filter merge touches only the tiny local
skylines.  Below 4 cores the speedup criterion is **auto-skipped** (a
1-core container cannot honestly demonstrate parallelism), but parity is
asserted unconditionally: partitioned results must be bit-identical to
serial execution on every machine.

Core counts are reported honestly: every benchmark prints the visible
core count (``repro.engine.parallel.cpu_count()``, which respects the
``REPRO_CPUS`` override) next to its timings.

Row-engine BNL joins the comparison on the correlated workload, where its
window stays small enough to finish in benchmark time at 200k rows; the
independent workload compares the columnar engine against itself (serial
vs. partitioned), which is the honest baseline for the parallel claim.
"""

from __future__ import annotations

import time

import pytest

from repro.core.base_numerical import HighestPreference, LowestPreference
from repro.core.constructors import pareto, prioritized
from repro.datasets.skyline_data import skyline_relation
from repro.engine.backend import numpy_available
from repro.engine.columnar import columnar_winnow
from repro.engine.parallel import cpu_count
from repro.query.algorithms import block_nested_loop

#: The acceptance-criterion dataset: 200k rows, 3 dimensions.
N_ROWS = 200_000
DIMS = 3

#: The acceptance criterion demands >= 2x at >= 4 cores.
SPEEDUP_THRESHOLD = 2.0
MIN_CORES = 4

CORES = cpu_count()

PARETO_PREF = pareto(
    HighestPreference("d0"), LowestPreference("d1"), HighestPreference("d2")
)
#: The "prioritized workload": a Pareto term whose first arm is itself a
#: prioritization of disjoint chains — the decompose_pareto shape, which
#: evaluates as one composite lexicographic axis per arm.
PRIORITIZED_PREF = pareto(
    prioritized(LowestPreference("d0"), HighestPreference("d1")),
    HighestPreference("d2"),
)


def best_of(fn, rounds: int = 3) -> float:
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return min(samples)


@pytest.fixture(scope="module")
def independent_200k():
    relation = skyline_relation("independent", N_ROWS, DIMS, seed=29)
    relation.columns()  # materialize outside every timed region
    return relation


@pytest.fixture(scope="module")
def correlated_200k():
    relation = skyline_relation("correlated", N_ROWS, DIMS, seed=29)
    relation.columns()
    return relation


@pytest.mark.skipif(not numpy_available(), reason="parallel speedups need numpy")
@pytest.mark.parametrize(
    "label, pref",
    [("pareto", PARETO_PREF), ("prioritized-arm", PRIORITIZED_PREF)],
)
def test_parallel_vs_serial_columnar_200k(independent_200k, label, pref):
    """Parity always; the >= 2x speedup criterion at >= 4 cores."""
    serial = columnar_winnow(pref, independent_200k)
    parallel = columnar_winnow(pref, independent_200k, partitions=CORES)
    assert parallel.rows() == serial.rows()  # bit-identical, every machine

    serial_s = best_of(lambda: columnar_winnow(pref, independent_200k))
    parallel_s = best_of(
        lambda: columnar_winnow(pref, independent_200k, partitions=CORES)
    )
    speedup = serial_s / parallel_s
    print(
        f"\n[{label}] cores={CORES} rows={N_ROWS}: "
        f"serial columnar {serial_s * 1e3:.1f}ms, "
        f"parallel[{CORES}] {parallel_s * 1e3:.1f}ms, "
        f"speedup {speedup:.2f}x"
    )
    if CORES < MIN_CORES:
        pytest.skip(
            f"speedup criterion needs >= {MIN_CORES} cores, "
            f"have {CORES} (parity asserted above)"
        )
    assert speedup >= SPEEDUP_THRESHOLD, (
        f"parallel winnow {speedup:.2f}x over single-thread columnar on "
        f"{CORES} cores; the acceptance criterion demands "
        f">= {SPEEDUP_THRESHOLD}x"
    )


@pytest.mark.skipif(not numpy_available(), reason="columnar timing needs numpy")
def test_three_way_comparison_correlated_200k(correlated_200k):
    """Row BNL vs. serial columnar vs. partitioned columnar, one dataset.

    Correlated data keeps the BNL window small, so the row engine finishes
    200k rows in benchmark time; all three evaluations must agree exactly,
    and the columnar engines must not lose to row BNL.
    """
    rows = correlated_200k.rows()
    serial = columnar_winnow(PARETO_PREF, correlated_200k)
    parallel = columnar_winnow(
        PARETO_PREF, correlated_200k, partitions=CORES
    )
    bnl_result = block_nested_loop(PARETO_PREF, rows)
    canon = lambda rs: sorted(  # noqa: E731
        tuple(sorted(r.items())) for r in rs
    )
    assert canon(parallel.rows()) == canon(serial.rows()) == canon(bnl_result)

    bnl_s = best_of(lambda: block_nested_loop(PARETO_PREF, rows), rounds=1)
    serial_s = best_of(lambda: columnar_winnow(PARETO_PREF, correlated_200k))
    parallel_s = best_of(
        lambda: columnar_winnow(PARETO_PREF, correlated_200k, partitions=CORES)
    )
    print(
        f"\n[three-way] cores={CORES} rows={N_ROWS}: "
        f"row BNL {bnl_s * 1e3:.1f}ms, "
        f"serial columnar {serial_s * 1e3:.1f}ms, "
        f"parallel[{CORES}] {parallel_s * 1e3:.1f}ms"
    )
    assert serial_s < bnl_s, "columnar must beat row BNL at 200k rows"


def test_parallel_parity_without_numpy_slice(independent_200k, monkeypatch):
    """The fallback kernels agree too — on a slice the pure-Python sweep
    can finish quickly (full 200k pure-Python runs live in the tier-1
    parity suite at smaller sizes)."""
    from repro.engine import backend as engine_backend

    monkeypatch.setattr(engine_backend, "_numpy", None)
    rows = independent_200k.rows()[:20_000]
    serial = columnar_winnow(PARETO_PREF, rows)
    assert columnar_winnow(PARETO_PREF, rows, partitions=4) == serial
