"""REV-CMP: preference revision against full re-planning on 50k rows.

Expected shape: a proved order refinement (prioritized append —
Definition 9) restarts from the current BMO set, so a revision examines
O(result) rows while the honest alternative re-plans and re-scans the
full 50k-row relation.  The PR-7 acceptance criterion demands >= 10x;
view restarts are typically orders of magnitude beyond it.

Every benchmark asserts result parity inline — including the
incomparable fallback, which must stay *exact* (full recompute, honestly
counted) rather than fast — so this file doubles as a revision
correctness run at scale.
"""

from __future__ import annotations

import time

import pytest

from repro.core.base_numerical import HighestPreference, LowestPreference
from repro.core.constructors import prioritized
from repro.datasets.cars import generate_cars
from repro.query import optimizer
from repro.query.revision import ReviseState
from repro.server import PreferenceService

#: The acceptance-criterion catalog size.
N_ROWS = 50_000

BASE = LowestPreference("price")
REFINED = prioritized(BASE, HighestPreference("horsepower"))
SWAPPED = HighestPreference("mileage")  # incomparable with BASE


def _canon(rows):
    return sorted(tuple(sorted(r.items())) for r in rows)


def _median_ns(fn, rounds=5):
    samples = []
    for _ in range(rounds):
        start = time.perf_counter_ns()
        fn()
        samples.append(time.perf_counter_ns() - start)
    samples.sort()
    return samples[len(samples) // 2]


@pytest.fixture(scope="module")
def cars_50k():
    return generate_cars(N_ROWS, seed=11)


def test_refinement_revision_10x_over_replanning(cars_50k):
    """The PR-7 acceptance criterion: revise-from-view vs full re-plan."""
    rows = cars_50k.rows()
    rounds = 5

    # Parity first: the revised state is exactly the fresh plan's answer.
    fresh = optimizer.plan(REFINED, cars_50k).execute()
    probe = ReviseState(BASE, rows)
    old_size = len(probe.result())
    outcome = probe.revise(REFINED)
    assert outcome.revision.shape == "prio-append"
    assert outcome.strategy == "view"
    assert outcome.examined == old_size < N_ROWS
    assert _canon(probe.result()) == _canon(fresh.rows())

    # One pre-seeded state per timing round: each revise is a fresh
    # view-restart over the same BMO set, never a warmed-up no-op.
    states = iter([ReviseState(BASE, rows) for _ in range(rounds)])
    revised_ns = _median_ns(lambda: next(states).revise(REFINED), rounds)
    replanned_ns = _median_ns(
        lambda: optimizer.plan(REFINED, cars_50k).execute(), rounds
    )

    ratio = replanned_ns / revised_ns
    assert ratio >= 10.0, (
        f"revision speedup criterion: {ratio:.1f}x < 10x "
        f"(revise {revised_ns}ns vs re-plan {replanned_ns}ns)"
    )


def test_incomparable_fallback_is_exact_not_fast(cars_50k):
    """The fallback contract at scale: an incomparable swap recomputes in
    full from the retained rows — same answer as a fresh plan, and the
    stats say so."""
    rows = cars_50k.rows()
    state = ReviseState(BASE, rows, frontier_limit=N_ROWS)
    outcome = state.revise(SWAPPED)
    assert outcome.revision.kind == "incomparable"
    assert outcome.strategy == "full"
    assert state.stats["full_recomputes"] == 1
    fresh = optimizer.plan(SWAPPED, cars_50k).execute()
    assert _canon(state.result()) == _canon(fresh.rows())


def test_contraction_restarts_from_frontier(cars_50k):
    """Retracting the appended stage resurrects rows from the kept
    frontier — exact, without reloading the base relation."""
    rows = cars_50k.rows()
    state = ReviseState(REFINED, rows, frontier_limit=N_ROWS)
    outcome = state.revise(BASE)
    assert outcome.revision.kind == "contraction"
    assert outcome.strategy == "frontier"
    fresh = optimizer.plan(BASE, cars_50k).execute()
    assert _canon(state.result()) == _canon(fresh.rows())


def test_served_view_revision_beats_replanning(cars_50k):
    """Service-level: revising a materialized continuous view in place
    beats re-planning the refined query, and the revised view answers
    subsequent queries with exactly the fresh plan's rows."""
    service = PreferenceService({"car": cars_50k.rows()})
    try:
        base_spec = {"type": "lowest", "attribute": "price"}
        refined_spec = {
            "type": "prioritized",
            "children": [
                base_spec,
                {"type": "highest", "attribute": "horsepower"},
            ],
        }
        service.materialize("car", base_spec)
        # Constraint mining is cached per catalog version; warm it so the
        # timing below is the revision itself, not one-off statistics.
        service._constraints_for("car", BASE)
        elapsed = time.perf_counter_ns()
        answer = service.revise("car", base_spec, refined_spec)
        elapsed = time.perf_counter_ns() - elapsed
        assert answer.summary["strategy"] == "view"
        replanned_ns = _median_ns(
            lambda: optimizer.plan(REFINED, cars_50k).execute(), 3
        )
        assert replanned_ns / elapsed >= 10.0, (
            f"served revision {elapsed}ns vs re-plan {replanned_ns}ns"
        )
        served = service.query(
            spec={"relation": "car", "prefer": refined_spec}
        )
        assert served.source == "view"
        fresh = optimizer.plan(REFINED, cars_50k).execute()
        assert _canon(served.rows) == _canon(fresh.rows())
    finally:
        service.close()
