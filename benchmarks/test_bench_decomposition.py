"""DEC-P8..P12: decomposition evaluation vs. direct algorithms.

The paper offers the decomposition theorems as the basis for divide &
conquer optimizers.  The ablation here measures when the Prop. 12 route
(two grouped prioritized queries plus the YY term) pays off against the
direct engines — on our substrate the direct algorithms win, which is why
the optimizer prefers them; the decomposition's value is structural insight
and cross-checking, exactly how the paper uses it.
"""

import pytest

from repro.core.base_numerical import AroundPreference, LowestPreference
from repro.core.constructors import pareto, prioritized
from repro.query.bmo import bmo
from repro.query.decomposition import (
    eval_pareto_decomposition,
    eval_prioritized_cascade,
    eval_prioritized_grouping,
)


@pytest.fixture(scope="module")
def car_rows(request):
    from repro.datasets.cars import generate_cars

    return generate_cars(600, seed=11).rows()


P1 = AroundPreference("price", 25000)
P2 = LowestPreference("mileage")


def _proj_set(rows, attrs=("price", "mileage")):
    return {tuple(r[a] for a in attrs) for r in rows}


class TestProp12Pareto:
    def test_direct_bnl(self, benchmark, car_rows):
        pref = pareto(P1, P2)
        out = benchmark.pedantic(
            lambda: bmo(pref, car_rows, algorithm="bnl"), rounds=3, iterations=1
        )
        assert out

    def test_decomposed(self, benchmark, car_rows):
        direct = _proj_set(bmo(pareto(P1, P2), car_rows))
        out = benchmark.pedantic(
            lambda: eval_pareto_decomposition(P1, P2, car_rows),
            rounds=3,
            iterations=1,
        )
        assert _proj_set(out) == direct


class TestProp10And11Prioritized:
    def test_grouping_route(self, benchmark, car_rows):
        pref = prioritized(P1, P2)
        direct = _proj_set(bmo(pref, car_rows))
        out = benchmark.pedantic(
            lambda: eval_prioritized_grouping(P1, P2, car_rows),
            rounds=3,
            iterations=1,
        )
        assert _proj_set(out) == direct

    def test_cascade_route(self, benchmark, car_rows):
        # P2 (a chain) leads, so Proposition 11 applies.
        pref = prioritized(P2, P1)
        direct = _proj_set(bmo(pref, car_rows))
        out = benchmark.pedantic(
            lambda: eval_prioritized_cascade(P2, P1, car_rows),
            rounds=3,
            iterations=1,
        )
        assert _proj_set(out) == direct

    def test_direct_prioritized(self, benchmark, car_rows):
        pref = prioritized(P1, P2)
        out = benchmark.pedantic(
            lambda: bmo(pref, car_rows, algorithm="bnl"), rounds=3, iterations=1
        )
        assert out
