"""Ablation: optimizer strategy choices (DESIGN.md section 5).

* rewriting on vs. off (degenerate terms),
* cascade vs. generic evaluation for chain-headed prioritized terms,
* SFS presorting vs. plain BNL,
* sort-based vs. generic evaluation for score terms.
"""

import pytest

from repro.core.base_nonnumerical import PosPreference
from repro.core.base_numerical import AroundPreference, LowestPreference
from repro.core.constructors import dual, pareto, prioritized
from repro.query.algorithms import block_nested_loop, sort_filter_skyline
from repro.query.bmo import bmo
from repro.query.optimizer import execute


@pytest.fixture(scope="module")
def cars(request):
    from repro.datasets.cars import generate_cars

    return generate_cars(1500, seed=11)


DEGENERATE = prioritized(
    pareto(PosPreference("color", {"red"}), dual(PosPreference("color", {"red"}))),
    AroundPreference("price", 25000),
    AroundPreference("price", 25000),
)


def test_rewriter_on(benchmark, cars):
    out = benchmark.pedantic(
        lambda: execute(DEGENERATE, cars, use_rewriter=True),
        rounds=3,
        iterations=1,
    )
    assert len(out) > 0


def test_rewriter_off(benchmark, cars):
    out = benchmark.pedantic(
        lambda: execute(DEGENERATE, cars, use_rewriter=False),
        rounds=3,
        iterations=1,
    )
    assert len(out) > 0


CHAIN_HEADED = prioritized(
    LowestPreference("price"), AroundPreference("mileage", 30000)
)


def test_cascade_on(benchmark, cars):
    out = benchmark.pedantic(
        lambda: execute(CHAIN_HEADED, cars), rounds=3, iterations=1
    )
    assert len(out) > 0


def test_cascade_off_generic_bnl(benchmark, cars):
    out = benchmark.pedantic(
        lambda: bmo(CHAIN_HEADED, cars, algorithm="bnl"), rounds=3, iterations=1
    )
    assert len(out) > 0


MIXED_PARETO = pareto(
    PosPreference("color", {"red", "black"}),
    AroundPreference("price", 25000),
    LowestPreference("mileage"),
)


def test_sfs_presort(benchmark, cars):
    rows = cars.rows()
    out = benchmark.pedantic(
        lambda: sort_filter_skyline(MIXED_PARETO, rows), rounds=3, iterations=1
    )
    assert out


def test_bnl_no_presort(benchmark, cars):
    rows = cars.rows()
    out = benchmark.pedantic(
        lambda: block_nested_loop(MIXED_PARETO, rows), rounds=3, iterations=1
    )
    assert out


def test_sort_based_for_score_term(benchmark, cars):
    pref = AroundPreference("price", 25000)
    out = benchmark.pedantic(
        lambda: bmo(pref, cars, algorithm="sort"), rounds=3, iterations=1
    )
    assert len(out) >= 1
