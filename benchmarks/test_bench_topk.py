"""TOPK: the ranked query model (Section 6.2).

Shape to reproduce: the threshold algorithm answers top-k after inspecting
a small prefix of the per-feature sorted lists (Quick-Combine's selling
point), while returning exactly the same k-best set as a full scan.
"""

from repro.core.base_numerical import ScorePreference
from repro.core.constructors import rank
from repro.query.topk import threshold_topk, top_k


def _rank_pref():
    return rank(
        lambda a, b: 0.7 * a + 0.3 * b,
        ScorePreference("horsepower", float, name="hp"),
        ScorePreference("year", float, name="yr"),
        name="wsum",
    )


def test_full_scan_topk(benchmark, cars_5k):
    pref = _rank_pref()
    out = benchmark.pedantic(
        lambda: top_k(pref, cars_5k, 10), rounds=3, iterations=1
    )
    assert len(out) == 10


def test_threshold_topk(benchmark, cars_5k):
    pref = _rank_pref()
    expected_scores = sorted(
        (pref.score(r) for r in top_k(pref, cars_5k, 10)), reverse=True
    )

    def run():
        return threshold_topk(pref, cars_5k, 10)

    out, stats = benchmark.pedantic(run, rounds=3, iterations=1)
    got_scores = sorted((pref.score(r) for r in out), reverse=True)
    assert got_scores == expected_scores
    fraction = stats.objects_seen / len(cars_5k)
    print(
        f"\n[TOPK] threshold inspected {stats.objects_seen}/{len(cars_5k)} "
        f"objects ({fraction:.1%}), {stats.rounds} rounds"
    )
    assert fraction < 0.5  # a small prefix, not a full scan
    benchmark.extra_info["objects_seen"] = stats.objects_seen
    benchmark.extra_info["fraction"] = round(fraction, 3)
