"""Incremental BMO maintenance vs. batch re-evaluation.

Shape: maintaining the window online is far cheaper than recomputing the
batch answer at every arrival, and the final windows agree exactly.
"""

from repro.core.base_numerical import AroundPreference, LowestPreference
from repro.core.constructors import pareto
from repro.query.algorithms import block_nested_loop
from repro.query.incremental import IncrementalBMO

WISH = pareto(AroundPreference("price", 25000), LowestPreference("mileage"))


def _arrivals():
    from repro.datasets.cars import generate_cars

    return generate_cars(600, seed=77).rows()


def test_streaming_maintenance(benchmark):
    arrivals = _arrivals()

    def stream():
        live = IncrementalBMO(WISH)
        live.insert_many(arrivals)
        return live

    live = benchmark.pedantic(stream, rounds=3, iterations=1)
    batch = block_nested_loop(WISH, arrivals)
    key = lambda r: tuple(sorted(r.items()))
    assert sorted(map(key, live.result())) == sorted(map(key, batch))


def test_batch_recompute_every_50(benchmark):
    """The naive alternative: rerun BNL after every 50 arrivals."""
    arrivals = _arrivals()

    def recompute():
        result = []
        for i in range(50, len(arrivals) + 1, 50):
            result = block_nested_loop(WISH, arrivals[:i])
        return result

    out = benchmark.pedantic(recompute, rounds=3, iterations=1)
    assert out
