"""REWRITE-PUSH: the selection-pushdown rule against the unrewritten plan.

The workload is the classic supervised-preference query on 50k rows:

    PREFERRING price AROUND 40000 AND HIGHEST(power)
    BUT ONLY DISTANCE(price) <= 2000

The quality condition is rigid (dominance only ever shrinks the AROUND
distance), so the rewrite engine converts it into a hard prefilter *below*
the winnow (``push_select_below_winnow``).  The unrewritten plan — the
exact same query with ``optimize(False)`` — must winnow all 50k rows and
only then discard the rows that relaxed too far; the rewritten plan
winnows the ~4% of rows that can survive at all.  The PR-3 acceptance
criterion demands >= 2x; the measured gap is typically far larger.

Every benchmark asserts result parity against the unrewritten plan, so
this file doubles as a 50k-row correctness run for the rewrite engine.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.base_numerical import (
    AroundPreference,
    HighestPreference,
    LowestPreference,
)
from repro.core.constructors import pareto, prioritized
from repro.session import Session

#: The acceptance-criterion dataset size.
N_ROWS = 50_000
PRICE_TARGET = 40_000
DISTANCE_BOUND = 2_000


def _car_rows(n: int, seed: int = 7) -> list[dict]:
    rng = random.Random(seed)
    return [
        {
            "price": rng.uniform(0, 100_000),
            "power": rng.uniform(50, 400),
            "mileage": rng.uniform(0, 200_000),
        }
        for _ in range(n)
    ]


def _row_set(rows):
    return {tuple(sorted(r.items())) for r in rows}


def _best_seconds(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def session():
    return Session({"car": _car_rows(N_ROWS)})


@pytest.fixture(scope="module")
def supervised_query(session):
    return (
        session.query("car")
        .prefer(pareto(
            AroundPreference("price", PRICE_TARGET),
            HighestPreference("power"),
        ))
        .but_only(("distance", "price", "<=", DISTANCE_BOUND))
    )


def test_pushdown_2x_over_unrewritten_50k(supervised_query):
    """The PR-3 acceptance criterion: >= 2x on the filtered 50k workload."""
    q = supervised_query
    assert "push_select_below_winnow" in q.explain()

    plan_rewritten = q.plan()
    plan_canonical = q.optimize(False).plan()

    canonical_seconds = _best_seconds(plan_canonical.execute)
    rewritten_seconds = _best_seconds(plan_rewritten.execute)

    assert _row_set(plan_rewritten.execute().rows()) == _row_set(
        plan_canonical.execute().rows()
    )
    speedup = canonical_seconds / rewritten_seconds
    assert speedup >= 2.0, (
        f"rewritten {rewritten_seconds:.3f}s vs canonical "
        f"{canonical_seconds:.3f}s — only {speedup:.1f}x"
    )


@pytest.mark.parametrize("mode", ["canonical", "rewritten"])
def test_pushdown_plans_50k(benchmark, supervised_query, mode):
    """The same pair as individual benchmark entries (for BENCH reports)."""
    q = supervised_query if mode == "rewritten" else supervised_query.optimize(False)
    plan = q.plan()
    reference = _row_set(supervised_query.optimize(False).plan().execute().rows())
    result = benchmark.pedantic(plan.execute, rounds=3, iterations=1)
    assert _row_set(result.rows()) == reference
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["result_size"] = len(reference)


def test_split_prio_cascade_beats_monolithic_sfs(session):
    """The generalized Proposition-11 split: cascade vs one sfs winnow.

    Not an acceptance criterion, but the cascade rule must never be a
    pessimization on its home workload (chain head over a compound tail).
    """
    pref = prioritized(
        LowestPreference("mileage"),
        pareto(AroundPreference("price", PRICE_TARGET), HighestPreference("power")),
    )
    q = session.query("car").prefer(pref)
    assert "split_prio" in q.explain()
    cascade_plan = q.plan()
    monolithic_plan = q.using("sfs").plan()

    cascade_seconds = _best_seconds(cascade_plan.execute)
    monolithic_seconds = _best_seconds(monolithic_plan.execute)

    assert _row_set(cascade_plan.execute().rows()) == _row_set(
        monolithic_plan.execute().rows()
    )
    # Generous bound: the cascade's first stage is a linear argmin pass.
    assert cascade_seconds <= monolithic_seconds * 1.5, (
        f"cascade {cascade_seconds:.3f}s vs sfs {monolithic_seconds:.3f}s"
    )
