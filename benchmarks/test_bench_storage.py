"""DURABLE-PUSH: the PR-8 acceptance workloads as correctness runs.

``tools/bench_report.py`` owns the timed criteria (``durable_pushdown``
>= 2x, ``snapshot_restore`` under budget); this file pins the two
experiments' *correctness* at benchmark scale so a regression in either
shows up as a test failure, not a silently easier benchmark:

* the SQL-prefiltered plan answers bit-exactly like the unrewritten
  full scan, on the same 200-category skyline workload the criterion
  times, and the rewrite is actually planted (no pushdown, no
  criterion);
* a checkpointed catalog restores exactly — rows, versions, and the
  mirror — in a fresh session over the same directory.
"""

from __future__ import annotations

import random

import pytest

from repro.core.base_numerical import HighestPreference, LowestPreference
from repro.core.constructors import pareto
from repro.datasets.cars import generate_cars
from repro.psql.ast import Comparison
from repro.session import Session

#: Benchmark-job scale: big enough for a real candidate-set gap,
#: small enough to keep the correctness run fast.
N_ROWS = 5_000


def _category_rows(n: int, seed: int = 31) -> list[dict]:
    rng = random.Random(seed)
    return [
        {
            "category": f"c{rng.randrange(200):03d}",
            "price": rng.uniform(0, 100_000),
            "power": rng.uniform(50, 400),
        }
        for _ in range(n)
    ]


@pytest.fixture(scope="module")
def sqlite_session():
    session = Session({"car": _category_rows(N_ROWS)}, storage="sqlite")
    yield session
    session.close()


def test_pushed_plan_is_planted_and_exact(sqlite_session):
    query = (
        sqlite_session.query("car")
        .where(Comparison("category", "=", "c007"))
        .prefer(pareto(LowestPreference("price"),
                       HighestPreference("power")))
    )
    text = query.explain()
    assert "push_select_into_storage" in text
    assert "StorageScan[car] backend=sqlite" in text
    pushed = query.plan().execute().rows()
    fullscan = query.optimize(False).plan().execute().rows()
    assert pushed == fullscan
    assert pushed  # the filtered category is non-empty by construction
    assert all(r["category"] == "c007" for r in pushed)


def test_backend_cardinality_feeds_the_cost_model(sqlite_session):
    query = (
        sqlite_session.query("car")
        .where(Comparison("category", "=", "c007"))
        .prefer(LowestPreference("price"))
    )
    backend = sqlite_session.storage.backend
    version = sqlite_session.catalog.version("car")
    count = backend.cardinality(
        "car", [Comparison("category", "=", "c007")], version
    )
    expected = sum(
        1 for r in sqlite_session.catalog.get("car").rows()
        if r["category"] == "c007"
    )
    assert count == expected
    assert "StorageScan[car]" in query.explain()


def test_snapshot_restore_is_exact_at_scale(tmp_path):
    rows = generate_cars(N_ROWS, seed=11).rows()
    writer = Session(storage="sqlite", data_dir=str(tmp_path))
    writer.register("car", [dict(r) for r in rows])
    info = writer.checkpoint()
    assert info["seq"] >= 1
    version = writer.catalog.version("car")
    writer.close()

    restored = Session(storage="sqlite", data_dir=str(tmp_path))
    try:
        assert restored.catalog.get("car").rows() == rows
        assert restored.catalog.version("car") == version
        # The mirror is live again: a pushed-down query works post-restore.
        query = (
            restored.query("car")
            .where(Comparison("price", "<", 10_000.0))
            .prefer(LowestPreference("price"))
        )
        assert "push_select_into_storage" in query.explain()
        got = query.plan().execute().rows()
        assert got == query.optimize(False).plan().execute().rows()
    finally:
        restored.close()
