"""TEN-SHARE: 10k tenants, canonicalized shared views, bounded LRU.

The PR-9 acceptance criterion: 10,000 simulated users whose profile
terms are *syntactic variants* of a small pool of canonical shapes
(commuted Pareto arms, laundered duplicates, associatively regrouped
prioritized chains) must achieve a >= 90% shared-view hit rate — the
canonicalized registry collapses the variants onto one continuous view
per equivalence class — while the shared index stays LRU-bounded.

Every assertion doubles as a correctness run: sampled tenant answers are
checked against fresh batch winnows of the tenant's own composed term,
and a post-churn resurrection is checked against the live catalog.
"""

from __future__ import annotations

import random

import pytest

from repro.core.base_numerical import (
    AroundPreference,
    HighestPreference,
    LowestPreference,
)
from repro.core.constructors import pareto, prioritized
from repro.datasets.cars import generate_cars
from repro.query.bmo import winnow
from repro.server import PreferenceService

N_USERS = 10_000
N_SHAPES = 48
CAPACITY = 64  # shared-view LRU bound: N_SHAPES fit, churn overflows


def _canon(rows):
    return sorted(tuple(sorted(r.items())) for r in rows)


def _shape_variants(i: int) -> tuple[list[dict], object]:
    """Syntactic spellings of one canonical shape + its live preference.

    Each shape ``i`` is pareto(price AROUND z_i, HIGHEST horsepower); the
    variants commute the arms, launder a duplicate arm, or regroup a
    prioritized chain — all Definition-13 equivalent, so they must share
    one registry key.
    """
    z = 10_000 + 1_000 * i
    around = {"type": "around", "attribute": "price", "z": z}
    hi_hp = {"type": "highest", "attribute": "horsepower"}
    if i % 3 == 2:
        lo_mi = {"type": "lowest", "attribute": "mileage"}
        variants = [
            {"type": "prioritized",
             "children": [around, {"type": "prioritized",
                                   "children": [hi_hp, lo_mi]}]},
            {"type": "prioritized",
             "children": [{"type": "prioritized",
                           "children": [around, hi_hp]}, lo_mi]},
            {"type": "prioritized", "children": [around, hi_hp, lo_mi]},
        ]
        pref = prioritized(
            AroundPreference("price", z),
            HighestPreference("horsepower"),
            LowestPreference("mileage"),
        )
        return variants, pref
    variants = [
        {"type": "pareto", "children": [around, hi_hp]},
        {"type": "pareto", "children": [hi_hp, around]},
        {"type": "pareto", "children": [around, hi_hp, around]},
    ]
    pref = pareto(AroundPreference("price", z), HighestPreference("horsepower"))
    return variants, pref


@pytest.fixture(scope="module")
def tenancy_service(cars_5k):
    service = PreferenceService(
        {"car": cars_5k.rows()},
        shared_view_capacity=CAPACITY,
        max_views_per_tenant=4,
    )
    yield service
    service.close()


def test_10k_users_share_canonical_views(tenancy_service):
    service = tenancy_service
    t = service.tenancy
    rng = random.Random(17)
    shapes = [_shape_variants(i) for i in range(N_SHAPES)]
    live = service.session.catalog.get("car").rows()

    sampled: list[tuple[str, int]] = []
    for user in range(N_USERS):
        shape = user % N_SHAPES  # every shape gets ~208 users
        variants, _ = shapes[shape]
        tenant = f"user-{user}"
        t.set_profile(tenant, "deal", rng.choice(variants))
        answer = t.query(tenant, spec={"relation": "car"})
        assert answer.rows
        if user % 977 == 0:  # spot-check parity across the run
            sampled.append((tenant, shape))
            assert _canon(answer.rows) == _canon(
                winnow(shapes[shape][1], live)
            )

    snapshot = t.metrics.snapshot()
    assert snapshot["total_queries"] == N_USERS
    hit_rate = snapshot["view_hit_rate"]
    # One miss per canonical shape seeds its view; everyone after hits.
    assert hit_rate >= 0.9, (
        f"shared-view hit rate criterion: {hit_rate:.4f} < 0.90 "
        f"({snapshot['total_view_hits']}/{snapshot['total_queries']} hits)"
    )
    # The registry holds exactly one view per equivalence class — the
    # syntactic variants collapsed — and stays within the LRU bound.
    assert len(t.shared) == N_SHAPES <= CAPACITY
    assert len(service.views) == N_SHAPES
    assert t.shared.evictions == 0
    assert sampled  # the parity loop really ran


def test_churn_keeps_registry_bounded_and_fresh(tenancy_service):
    """After the 10k-user run, 200 one-off terms overflow the LRU; the
    index must stay at capacity and resurrected views must re-seed from
    the live catalog."""
    service = tenancy_service
    t = service.tenancy
    for i in range(200):
        z = 900_000 + i  # distinct shapes, never repeated; one tenant
        t.query(f"churn-{i}", spec={  # each, so no view quota bites
            "relation": "car",
            "prefer": {"type": "around", "attribute": "price", "z": z},
        })
        assert len(t.shared) <= CAPACITY
    assert t.shared.evictions >= 200 - CAPACITY

    # A popular shape evicted by the churn resurrects fresh: mutate the
    # catalog first, then confirm the reseeded view reflects it.
    service.insert("car", [dict(
        service.session.catalog.get("car").rows()[0],
        oid=10**7, price=10_000, horsepower=10**6,
    )])
    variants, pref = _shape_variants(0)
    answer = t.query("user-0", spec={"relation": "car"})
    live = service.session.catalog.get("car").rows()
    assert _canon(answer.rows) == _canon(winnow(pref, live))
    assert any(r["horsepower"] == 10**6 for r in answer.rows)
