"""PXP: the Section 6.1 Preference XPath queries Q1 and Q2."""

import pytest

from repro.pxpath.evaluator import PreferenceXPath
from repro.pxpath.model import XNode

Q1 = "/CARS/CAR #[(@fuel_economy) highest and (@horsepower) highest]#"
Q2 = (
    '/CARS/CAR #[(@color) in ("black", "white") prior to (@price) around '
    '10000]# #[(@mileage) lowest]#'
)


@pytest.fixture(scope="module")
def document() -> XNode:
    from repro.datasets.cars import generate_cars

    root = XNode("CARS")
    for row in generate_cars(1000, seed=11):
        root.append(
            XNode(
                "CAR",
                {
                    "color": row["color"],
                    "price": row["price"],
                    "mileage": row["mileage"],
                    "fuel_economy": row["fuel_economy"],
                    "horsepower": row["horsepower"],
                },
            )
        )
    return root


def test_q1_pareto_over_xml(benchmark, document):
    px = PreferenceXPath(document)
    out = benchmark.pedantic(lambda: px.query(Q1), rounds=3, iterations=1)
    assert 0 < len(out) < 1000
    print(f"\n[PXP] Q1 -> {len(out)} best CAR elements")


def test_q2_prioritized_cascade_over_xml(benchmark, document):
    px = PreferenceXPath(document)
    out = benchmark.pedantic(lambda: px.query(Q2), rounds=3, iterations=1)
    assert 0 < len(out) < 1000
    print(f"\n[PXP] Q2 -> {len(out)} best CAR elements")


def test_parse_only(benchmark):
    from repro.pxpath.parser import parse_path

    path = benchmark(lambda: parse_path(Q2))
    assert len(path.steps) == 2
