"""EX1-EX11: the paper's worked examples, timed and verified.

Each benchmark re-derives the example's published result inside the timed
function and asserts it, so the numbers in ``EXPERIMENTS.md`` come from
runs that provably reproduced the figures.
"""

from repro.core.base_nonnumerical import (
    ExplicitPreference,
    NegPreference,
    PosPreference,
)
from repro.core.base_numerical import (
    AroundPreference,
    HighestPreference,
    LowestPreference,
    ScorePreference,
)
from repro.core.constructors import intersection, pareto, prioritized, rank
from repro.core.graph import BetterThanGraph
from repro.core.preference import AntiChain
from repro.datasets.cars import example6_preferences
from repro.query.bmo import bmo, perfect_matches
from repro.query.decomposition import eval_prioritized_grouping, yy_set
from repro.relations.relation import Relation

A123 = ("A1", "A2", "A3")
EXAMPLE2_ROWS = [
    dict(zip(A123, v))
    for v in [(-5, 3, 4), (-5, 4, 4), (5, 1, 8), (5, 6, 6), (-6, 0, 6),
              (-6, 0, 4), (6, 2, 7)]
]


def test_ex1_explicit_graph(benchmark):
    pref = ExplicitPreference(
        "Color", [("green", "yellow"), ("green", "red"), ("yellow", "white")]
    )
    domain = ["white", "red", "yellow", "green", "brown", "black"]

    def build():
        return BetterThanGraph(pref, domain)

    graph = benchmark(build)
    assert sorted(graph.maxima()) == ["red", "white"]
    assert graph.height() == 4


def test_ex2_pareto_graph(benchmark):
    pref = pareto(
        pareto(AroundPreference("A1", 0), LowestPreference("A2")),
        HighestPreference("A3"),
    )

    def build():
        return BetterThanGraph(pref, EXAMPLE2_ROWS, node_attributes=A123)

    graph = benchmark(build)
    assert sorted(graph.maxima()) == [(-6, 0, 6), (-5, 3, 4), (5, 1, 8)]
    assert graph.height() == 2


def test_ex3_shared_attribute_pareto(benchmark):
    pref = pareto(
        PosPreference("Color", {"green", "yellow"}),
        NegPreference("Color", {"red", "green", "blue", "purple"}),
    )
    values = ["red", "green", "yellow", "blue", "black", "purple"]

    graph = benchmark(lambda: BetterThanGraph(pref, values))
    assert sorted(graph.maxima()) == ["black", "green", "yellow"]


def test_ex4_prioritized_graphs(benchmark):
    p8 = prioritized(AroundPreference("A1", 0), LowestPreference("A2"))
    p9 = prioritized(
        pareto(AroundPreference("A1", 0), LowestPreference("A2")),
        HighestPreference("A3"),
    )

    def build():
        g8 = BetterThanGraph(p8, EXAMPLE2_ROWS, node_attributes=A123)
        g9 = BetterThanGraph(p9, EXAMPLE2_ROWS, node_attributes=A123)
        return g8, g9

    g8, g9 = benchmark(build)
    assert g8.height() == 3 and g9.height() == 2


def test_ex5_rank_scoring(benchmark):
    pref = rank(
        lambda x1, x2: x1 + 2 * x2,
        ScorePreference("A1", lambda x: abs(x), name="f1"),
        ScorePreference("A2", lambda x: abs(x + 2), name="f2"),
        name="F",
    )
    rows = [
        dict(zip(("A1", "A2"), v))
        for v in [(-5, 3), (-5, 4), (5, 1), (5, 6), (-6, 0), (-6, 0)]
    ]

    scores = benchmark(lambda: [pref.score(r) for r in rows])
    assert scores == [15, 17, 11, 21, 10, 10]


def test_ex6_engineering_scenario(benchmark, cars_1k):
    prefs = example6_preferences()

    def run():
        return {
            key: len(bmo(prefs[key], cars_1k))
            for key in ("Q1", "Q2", "Q1_star", "Q2_star")
        }

    sizes = benchmark.pedantic(run, rounds=3, iterations=1)
    assert all(0 < n < len(cars_1k) for n in sizes.values())
    print(f"\n[EX6] BMO sizes on 1k cars: {sizes}")


def test_ex7_non_discrimination(benchmark):
    p1, p2 = LowestPreference("Price"), LowestPreference("Mileage")
    rows = [
        dict(zip(("Price", "Mileage"), v))
        for v in [(40000, 15000), (35000, 30000), (20000, 10000),
                  (15000, 35000), (15000, 30000)]
    ]
    lhs = pareto(p1, p2)
    rhs = intersection(prioritized(p1, p2), prioritized(p2, p1))

    def check():
        g1 = BetterThanGraph(lhs, rows, node_attributes=("Price", "Mileage"))
        g2 = BetterThanGraph(rhs, rows, node_attributes=("Price", "Mileage"))
        return g1, g2

    g1, g2 = benchmark(check)
    assert set(g1.edges()) == set(g2.edges())
    assert sorted(g1.maxima()) == [(15000, 30000), (20000, 10000)]


def test_ex8_bmo_query(benchmark):
    pref = ExplicitPreference(
        "Color", [("green", "yellow"), ("green", "red"), ("yellow", "white")]
    )
    r = Relation.from_tuples(
        "R", ["Color"], [("yellow",), ("red",), ("green",), ("black",)]
    )

    best = benchmark(lambda: bmo(pref, r))
    assert sorted(row["Color"] for row in best) == ["red", "yellow"]
    assert [row["Color"] for row in perfect_matches(pref, r)] == ["red"]


def test_ex9_non_monotonicity(benchmark):
    pref = pareto(
        HighestPreference("Fuel_Economy"), HighestPreference("Insurance_Rating")
    )
    states = [
        [(100, 3, "frog"), (50, 3, "cat")],
        [(100, 3, "frog"), (50, 3, "cat"), (50, 10, "shark")],
        [(100, 3, "frog"), (50, 3, "cat"), (50, 10, "shark"),
         (100, 10, "turtle")],
    ]
    attrs = ("Fuel_Economy", "Insurance_Rating", "Nickname")

    def run():
        return [
            sorted(
                r["Nickname"]
                for r in bmo(pref, [dict(zip(attrs, t)) for t in state])
            )
            for state in states
        ]

    results = benchmark(run)
    assert results == [["frog"], ["frog", "shark"], ["turtle"]]


def test_ex10_prioritized_grouping(benchmark):
    cars = Relation.from_tuples(
        "Cars",
        ["Make", "Price", "Oid"],
        [("Audi", 40000, 1), ("BMW", 35000, 2), ("VW", 20000, 3),
         ("BMW", 50000, 4)],
    )
    p1, p2 = AntiChain("Make"), AroundPreference("Price", 40000)

    out = benchmark(lambda: eval_prioritized_grouping(p1, p2, cars))
    assert sorted(r["Oid"] for r in out) == [1, 2, 3]


def test_ex11_yy_term(benchmark):
    p1, p2 = LowestPreference("A"), HighestPreference("A")
    r = Relation.from_tuples("R", ["A"], [(3,), (6,), (9,)])

    def run():
        yy = yy_set(prioritized(p1, p2), prioritized(p2, p1), r)
        full = bmo(pareto(p1, p2), r)
        return yy, full

    yy, full = benchmark(run)
    assert [row["A"] for row in yy] == [6]
    assert sorted(row["A"] for row in full) == [3, 6, 9]
