"""LAW-P2..P6 and FIG-H: the algebra and the constructor hierarchy, timed.

These benches measure the machinery that makes the optimizer's rewriting
practical: law checking on probe domains, term simplification, and the
hierarchy witnesses.
"""

import itertools

from repro.algebra.equivalence import equivalent_on
from repro.algebra.laws import ALL_LAWS
from repro.algebra.rewriter import simplify
from repro.core.base_nonnumerical import NegPreference, PosPreference
from repro.core.base_numerical import AroundPreference, LowestPreference
from repro.core.constructors import dual, pareto, prioritized
from repro.core.hierarchy import (
    around_as_between,
    between_as_score,
    pos_as_pospos,
    pospos_as_explicit,
)
from repro.core.base_nonnumerical import PosPosPreference

PROBE = [
    {"a": x, "b": y} for x in range(4) for y in range(4)
]
SINGLE_PROBE = [{"a": x, "b": 0} for x in range(5)]


def test_law_suite_on_probe(benchmark):
    """Check every applicable unary/binary law on fixed operands."""
    operands = [
        PosPreference("a", {1, 2}),
        NegPreference("a", {0}),
        AroundPreference("a", 2),
        LowestPreference("a"),
    ]

    def check_all():
        checked = 0
        for law in ALL_LAWS:
            if law.arity > 2 or law.name.startswith(("union", "linear_sum")):
                continue
            pools = [operands] * law.arity
            for args in itertools.product(*pools):
                try:
                    lhs, rhs = law.sides(*args)
                except (ValueError, TypeError):
                    continue
                assert equivalent_on(lhs, rhs, PROBE), law.name
                checked += 1
        return checked

    checked = benchmark.pedantic(check_all, rounds=1, iterations=1)
    print(f"\n[LAW] {checked} law instances verified")
    assert checked > 50


def test_simplification_throughput(benchmark):
    p = PosPreference("a", {1})
    term = prioritized(
        pareto(p, dual(p), AroundPreference("b", 2)),
        prioritized(p, p),
        dual(dual(LowestPreference("b"))),
    )

    simplified = benchmark(lambda: simplify(term))
    assert equivalent_on(term, simplified, PROBE)


def test_hierarchy_witnesses(benchmark):
    """FIG-H: all three taxonomy diagrams verified as equivalences."""
    pos = PosPreference("a", {1, 2})
    pospos = PosPosPreference("a", {1}, {2})
    around = AroundPreference("a", 2)

    def verify():
        assert equivalent_on(pos, pos_as_pospos(pos), SINGLE_PROBE)
        assert equivalent_on(pospos, pospos_as_explicit(pospos), SINGLE_PROBE)
        assert equivalent_on(around, around_as_between(around), SINGLE_PROBE)
        between = around_as_between(around)
        assert equivalent_on(between, between_as_score(between), SINGLE_PROBE)
        return True

    assert benchmark(verify)
