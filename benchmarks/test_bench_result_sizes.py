"""SZ-KFH01: BMO result sizes of Pareto preferences on e-shop data.

[KFH01] reports that real customer queries under BMO semantics produced
"a few to a few dozens" results.  The bench sweeps soft-criteria counts
(2-6) and catalog sizes and prints the result-size table; the shape to
reproduce is: sizes stay in the single digits to low tens, grow with the
number of Pareto dimensions, and stay roughly flat in catalog size.
"""

import pytest

from repro.core.base_nonnumerical import PosPreference
from repro.core.base_numerical import (
    AroundPreference,
    HighestPreference,
    LowestPreference,
)
from repro.core.constructors import pareto
from repro.datasets.cars import generate_cars
from repro.query.bmo import result_size


def _wish(dims: int):
    criteria = [
        AroundPreference("price", 25000),
        LowestPreference("mileage"),
        PosPreference("color", {"red", "black"}),
        HighestPreference("year"),
        AroundPreference("horsepower", 110),
        PosPreference("category", {"roadster", "cabriolet"}),
    ]
    return pareto(*criteria[:dims])


@pytest.mark.parametrize("dims", [2, 3, 4, 5, 6])
def test_result_size_by_dimension(benchmark, dims):
    # One make's sub-catalog, like a filtered shop session.
    cars = generate_cars(4000, seed=11).select(lambda r: r["make"] == "Opel")
    wish = _wish(dims)

    size = benchmark.pedantic(
        lambda: result_size(wish, cars), rounds=2, iterations=1
    )
    print(f"\n[SZ-KFH01] dims={dims} catalog={len(cars)} -> size={size}")
    if dims <= 4:
        # The band [KFH01] reports for typical shop queries (2-4 criteria).
        assert 1 <= size <= 100
    else:
        # Wide Pareto wishes blow the band up — the known skyline curse of
        # dimensionality; we record the value rather than bound it.
        assert 1 <= size < len(cars)
    benchmark.extra_info["dims"] = dims
    benchmark.extra_info["result_size"] = size


@pytest.mark.parametrize("n", [500, 2000, 8000])
def test_result_size_by_catalog_size(benchmark, n):
    cars = generate_cars(n, seed=11).select(lambda r: r["make"] == "Opel")
    wish = _wish(3)

    size = benchmark.pedantic(
        lambda: result_size(wish, cars), rounds=2, iterations=1
    )
    print(f"\n[SZ-KFH01] n={n} (filtered {len(cars)}) -> size={size}")
    # BMO adapts to data quality, not quantity: sizes stay small as n grows.
    assert 1 <= size <= 100
    benchmark.extra_info["n"] = n
    benchmark.extra_info["result_size"] = size
