"""COL-CMP: the columnar winnow against the row engine on skyline data.

Expected shape: on large Pareto-of-chains inputs the columnar backend
(rank-encoded vectors + block-vectorized dominance, NumPy) beats row-level
``block_nested_loop`` by well over the 5x the PR-2 acceptance criterion
demands — the row engine pays one ``pref._lt`` call (recursive dispatch +
dict projections) per dominance test, the columnar engine pays a handful of
broadcasted integer comparisons per *block*.  The pure-Python fallback
kernels stay within the same order of magnitude as row BNL.

Every benchmark asserts result parity inline, so this file doubles as a
50k-row correctness run.
"""

from __future__ import annotations

import time

import pytest

from repro.core.base_numerical import HighestPreference, LowestPreference
from repro.core.constructors import pareto
from repro.datasets.skyline_data import skyline_relation
from repro.engine.backend import numpy_available
from repro.engine.columnar import columnar_winnow
from repro.query.algorithms import block_nested_loop

#: The acceptance-criterion dataset: 50k rows, 3 dimensions.
N_ROWS = 50_000
DIMS = 3


def _pref(dims: int):
    children = [
        HighestPreference(f"d{i}") if i % 2 == 0 else LowestPreference(f"d{i}")
        for i in range(dims)
    ]
    return pareto(*children)


def _row_set(rows):
    return {tuple(sorted(r.items())) for r in rows}


@pytest.fixture(scope="module")
def skyline_50k():
    out = {}
    for kind in ("independent", "correlated", "anticorrelated"):
        relation = skyline_relation(kind, N_ROWS, DIMS, seed=13)
        relation.columns()  # materialize outside the timed paths
        out[kind] = relation
    return out


@pytest.mark.skipif(not numpy_available(), reason="speedup claim needs NumPy")
@pytest.mark.parametrize("kind", ["independent", "correlated"])
def test_columnar_5x_over_bnl_50k(skyline_50k, kind):
    """The PR-2 acceptance criterion: >= 5x over BNL on a 50k-row skyline."""
    relation = skyline_50k[kind]
    pref = _pref(DIMS)
    rows = relation.rows()

    start = time.perf_counter()
    expected = block_nested_loop(pref, rows)
    bnl_seconds = time.perf_counter() - start

    start = time.perf_counter()
    result = columnar_winnow(pref, relation)
    columnar_seconds = time.perf_counter() - start

    assert _row_set(result.rows()) == _row_set(expected)
    speedup = bnl_seconds / columnar_seconds
    assert speedup >= 5.0, (
        f"{kind}: columnar {columnar_seconds:.3f}s vs BNL {bnl_seconds:.3f}s "
        f"— only {speedup:.1f}x"
    )


@pytest.mark.parametrize("kind", ["independent", "correlated", "anticorrelated"])
@pytest.mark.parametrize("strategy", ["sfs", "bnl"])
def test_columnar_strategies_50k(benchmark, skyline_50k, kind, strategy):
    relation = skyline_50k[kind]
    pref = _pref(DIMS)
    reference = _row_set(block_nested_loop(pref, relation.rows()))

    result = benchmark.pedantic(
        lambda: columnar_winnow(pref, relation, strategy=strategy),
        rounds=3,
        iterations=1,
    )
    assert _row_set(result.rows()) == reference
    benchmark.extra_info["skyline_size"] = len(reference)
    benchmark.extra_info["numpy"] = numpy_available()


@pytest.mark.parametrize("kind", ["independent", "anticorrelated"])
def test_python_fallback_5k(benchmark, monkeypatch, kind):
    """The NumPy-less kernels on 5k rows: correct, and not pathological."""
    from repro.engine import backend as engine_backend

    relation = skyline_relation(kind, 5_000, DIMS, seed=13)
    relation.columns()
    pref = _pref(DIMS)
    reference = _row_set(block_nested_loop(pref, relation.rows()))

    monkeypatch.setattr(engine_backend, "_numpy", None)
    result = benchmark.pedantic(
        lambda: columnar_winnow(pref, relation, strategy="sfs"),
        rounds=3,
        iterations=1,
    )
    assert _row_set(result.rows()) == reference


@pytest.mark.skipif(not numpy_available(), reason="auto choice needs NumPy")
def test_planner_auto_picks_columnar_50k(benchmark, skyline_50k):
    """End-to-end: Session auto-chooses the columnar backend at this scale."""
    from repro.session import Session

    session = Session({"sky": skyline_50k["independent"]})
    query = session.query("sky").prefer(_pref(DIMS))
    assert "ColumnarPreferenceSelect" in query.explain()

    result = benchmark.pedantic(query.run, rounds=3, iterations=1)
    assert _row_set(result.rows()) == _row_set(
        block_nested_loop(_pref(DIMS), skyline_50k["independent"].rows())
    )
