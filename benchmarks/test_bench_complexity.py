"""CPX-N2: the Section 5.1 claim — naive Pareto evaluation needs O(n^2)
better-than tests.

The bench counts actual better-than tests over an n-sweep and reports the
fitted growth exponent; the worst case (a conflicting Pareto term that
never eliminates anybody) is exactly n(n-1).
"""

import math

from repro.core.base_numerical import HighestPreference, LowestPreference
from repro.core.constructors import pareto
from repro.datasets.skyline_data import anticorrelated
from repro.query.algorithms import (
    ComparisonCounter,
    block_nested_loop,
    naive_nested_loop,
)


def test_naive_comparison_counts(benchmark):
    sizes = (100, 200, 400)
    pref_plain = pareto(HighestPreference("d0"), HighestPreference("d1"))

    def sweep():
        counts = {}
        for n in sizes:
            rows = anticorrelated(n, 2, seed=17)
            counter = ComparisonCounter()
            naive_nested_loop(counter.wrap(pref_plain), rows)
            counts[n] = counter.comparisons
        return counts

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    exponent = math.log(counts[400] / counts[100]) / math.log(4)
    print(f"\n[CPX-N2] naive better-than tests: {counts}, exponent={exponent:.2f}")
    assert exponent > 1.3
    benchmark.extra_info["counts"] = counts
    benchmark.extra_info["exponent"] = round(exponent, 2)


def test_worst_case_is_exactly_quadratic(benchmark):
    def worst():
        n = 150
        rows = [{"x": float(i)} for i in range(n)]
        counter = ComparisonCounter()
        pref = counter.wrap(
            pareto(HighestPreference("x"), LowestPreference("x"))
        )
        naive_nested_loop(pref, rows)
        return n, counter.comparisons

    n, comparisons = benchmark.pedantic(worst, rounds=1, iterations=1)
    assert comparisons == n * (n - 1)


def test_bnl_beats_naive_on_comparisons(benchmark):
    pref_plain = pareto(HighestPreference("d0"), HighestPreference("d1"))
    rows = anticorrelated(400, 2, seed=17)

    def measure():
        c_naive, c_bnl = ComparisonCounter(), ComparisonCounter()
        naive_nested_loop(c_naive.wrap(pref_plain), rows)
        block_nested_loop(c_bnl.wrap(pref_plain), rows)
        return c_naive.comparisons, c_bnl.comparisons

    naive_count, bnl_count = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\n[CPX-N2] naive={naive_count} vs bnl={bnl_count} comparisons")
    assert bnl_count <= naive_count
