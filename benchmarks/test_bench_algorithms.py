"""ALG-CMP: evaluation algorithms across the skyline distributions.

Expected shape ([BKS01]/[TEO01], and the paper's efficiency discussion):
BNL / SFS / D&C clearly beat the naive evaluator; anti-correlated data is
the hard case (largest skylines, smallest speedups); correlated data is
nearly free.
"""

import pytest

from repro.core.base_numerical import HighestPreference
from repro.core.constructors import pareto
from repro.query.algorithms import (
    block_nested_loop,
    divide_and_conquer,
    naive_nested_loop,
    sort_filter_skyline,
    two_d_sweep,
)

ENGINES = {
    "naive": naive_nested_loop,
    "bnl": block_nested_loop,
    "sfs": sort_filter_skyline,
    "dc": divide_and_conquer,
}


def _pref(dims: int):
    return pareto(*(HighestPreference(f"d{i}") for i in range(dims)))


@pytest.mark.parametrize("kind", ["independent", "correlated", "anticorrelated"])
@pytest.mark.parametrize("engine", ["naive", "bnl", "sfs", "dc"])
def test_skyline_3d(benchmark, skyline_sets, kind, engine):
    relation = skyline_sets[(kind, 1000, 3)]
    rows = relation.rows()
    pref = _pref(3)
    reference = {tuple(sorted(r.items())) for r in naive_nested_loop(pref, rows)}

    result = benchmark.pedantic(
        lambda: ENGINES[engine](pref, rows), rounds=3, iterations=1
    )
    assert {tuple(sorted(r.items())) for r in result} == reference
    benchmark.extra_info["skyline_size"] = len(reference)


@pytest.mark.parametrize("kind", ["independent", "anticorrelated"])
def test_two_d_sweep_vs_bnl(benchmark, skyline_sets, kind):
    relation = skyline_sets[(kind, 1000, 2)]
    rows = relation.rows()
    pref = _pref(2)
    reference = {tuple(sorted(r.items())) for r in block_nested_loop(pref, rows)}

    result = benchmark.pedantic(
        lambda: two_d_sweep(pref, rows), rounds=3, iterations=1
    )
    assert {tuple(sorted(r.items())) for r in result} == reference


@pytest.mark.parametrize("dims", [2, 3, 5])
def test_dimensionality_effect_sfs(benchmark, skyline_sets, dims):
    relation = skyline_sets[("independent", 1000, dims)]
    rows = relation.rows()
    pref = _pref(dims)

    result = benchmark.pedantic(
        lambda: sort_filter_skyline(pref, rows), rounds=3, iterations=1
    )
    benchmark.extra_info["skyline_size"] = len(
        {tuple(sorted(r.items())) for r in result}
    )
