#!/usr/bin/env python3
"""Run every ```python code block in README.md and docs/*.md.

Documentation that doesn't execute is documentation that lies.  This
runner extracts fenced ``python`` blocks (anything else — ``text``,
bare fences — is treated as illustrative and skipped) and executes them
top-to-bottom, one shared namespace per file, so later blocks in a file
may build on earlier ones.

Used two ways:

* ``python tools/check_docs.py`` — the CI docs job (exit 1 on failure),
* ``tests/docs/test_docs_examples.py`` — the tier-1 suite imports
  :func:`check_all` so doc breakage fails ordinary test runs too.
"""

from __future__ import annotations

import os
import re
import sys
import traceback
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ```python ... ``` with any indentation stripped from the fence line.
_BLOCK_RE = re.compile(
    r"^```python[ \t]*\n(.*?)^```[ \t]*$", re.MULTILINE | re.DOTALL
)


def doc_files(root: Path = REPO_ROOT) -> list[Path]:
    """README.md plus every markdown file under docs/, sorted."""
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def python_blocks(text: str) -> list[str]:
    return [m.group(1) for m in _BLOCK_RE.finditer(text)]


def check_file(path: Path) -> list[str]:
    """Execute a file's python blocks; return error descriptions."""
    errors: list[str] = []
    namespace: dict = {"__name__": f"docs:{path.name}"}
    for number, source in enumerate(python_blocks(path.read_text()), start=1):
        try:
            code = compile(source, f"{path.name}[block {number}]", "exec")
            exec(code, namespace)  # noqa: S102 - the whole point
        except Exception:
            errors.append(
                f"{path.relative_to(REPO_ROOT)} block {number}:\n"
                + traceback.format_exc(limit=3)
            )
    return errors


def lint_snippets(root: Path = REPO_ROOT) -> list[str]:
    """prefcheck's generic lint over examples/ and every doc code block.

    Documentation and examples teach the idioms the linter enforces on
    the source tree, so they are held to the same rules (the lock-scope
    check applies anywhere; snippets never define plan nodes or server
    handlers, so the per-path checks stay dormant).
    """
    sys.path.insert(0, str(root / "tools"))
    try:
        from prefcheck import check_source
    finally:
        sys.path.pop(0)
    findings: list[str] = []
    for path in sorted((root / "examples").glob("*.py")):
        findings += [
            str(f) for f in check_source(
                path.read_text(), str(path.relative_to(root)),
            )
        ]
    for path in doc_files(root):
        for number, source in enumerate(python_blocks(path.read_text()), 1):
            findings += [
                str(f) for f in check_source(
                    source, f"{path.relative_to(root)}[block {number}]",
                )
            ]
    return findings


def check_all(root: Path = REPO_ROOT) -> list[str]:
    """Run all doc code blocks; return the list of failures (empty = good)."""
    # Doc examples describe the default configuration; a REPRO_STORAGE
    # matrix leg must not change the plans their assertions print.
    # Blocks that want a backend ask for one (docs/storage.md).
    os.environ["REPRO_STORAGE"] = "memory"
    src = root / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    errors: list[str] = []
    for path in doc_files(root):
        count = len(python_blocks(path.read_text()))
        print(f"checking {path.relative_to(root)} ({count} python blocks)")
        errors.extend(check_file(path))
    return errors


def main() -> int:
    errors = check_all()
    lint = lint_snippets()
    if lint:
        print(f"\n{len(lint)} prefcheck finding(s) in docs/examples:")
        for finding in lint:
            print(f"  {finding}")
    if errors:
        print(f"\n{len(errors)} documentation block(s) failed:\n")
        for error in errors:
            print(error)
    if errors or lint:
        return 1
    print("all documentation code blocks ran cleanly (prefcheck included)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
