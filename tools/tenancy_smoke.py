#!/usr/bin/env python
"""Multi-tenant smoke: 200 users, shared views, isolation, SIGKILL recovery.

Boots ``python -m repro.server`` on the SQLite backend with a durable
data directory and drives it over the wire with ~200 simulated tenants
whose profiles overlap (syntactic variants of a small pool of canonical
preference shapes), under mixed traffic — profiled queries, profile
revisions (live view migration), and subscriptions.  Asserts:

* the canonicalized shared-view index collapses the variants: the
  tenant view-hit rate stays high and the registry stays at one view
  per equivalence class,
* tenant isolation: one tenant's revisions and deletions never change
  another tenant's answers, and migration deltas only reach the
  revising tenant's subscriptions,
* clean profile recovery: after SIGKILL (no shutdown hooks) and a
  restart from the same data directory, every sampled tenant's profile
  version and query answer are exactly the pre-kill state.

Run from the repo root (CI's ``tenancy-smoke`` job)::

    PYTHONPATH=src python tools/tenancy_smoke.py
"""

from __future__ import annotations

import os
import random
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

N_USERS = 200
N_SHAPES = 8


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(data_dir: str, port: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO / 'src'}{os.pathsep}" + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.server",
         "--port", str(port), "--cars", "500",
         "--storage", "sqlite", "--data-dir", data_dir,
         "--shared-view-cap", "32"],
        cwd=REPO, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def wait_ready(port: int, process: subprocess.Popen,
               timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            output = process.stdout.read() if process.stdout else ""
            raise SystemExit(f"server died during startup:\n{output}")
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=1):
                return
        except OSError:
            time.sleep(0.1)
    raise SystemExit(f"server on port {port} not ready after {timeout}s")


def canon(rows: list[dict]) -> list[tuple]:
    return sorted(tuple(sorted(r.items())) for r in rows)


def shape_variants(i: int) -> list[dict]:
    """Three Definition-13-equivalent spellings of canonical shape ``i``."""
    around = {"type": "around", "attribute": "price", "z": 20_000 + 5_000 * i}
    hi_hp = {"type": "highest", "attribute": "horsepower"}
    return [
        {"type": "pareto", "children": [around, hi_hp]},
        {"type": "pareto", "children": [hi_hp, around]},
        {"type": "pareto", "children": [around, hi_hp, around]},
    ]


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.server.client import PreferenceClient

    rng = random.Random(42)
    data_dir = tempfile.mkdtemp(prefix="tenancy_smoke_")
    port = free_port()
    server = start_server(data_dir, port)
    failures: list[str] = []
    try:
        wait_ready(port, server)
        pre_kill: dict[str, tuple[int, list[tuple]]] = {}
        with PreferenceClient(port=port, timeout=60) as client:
            # -- mixed traffic: profile + query for every tenant ---------
            for user in range(N_USERS):
                tenant = f"user-{user}"
                shape = user % N_SHAPES
                client.profile_set(
                    "deal", rng.choice(shape_variants(shape)),
                    tenant=tenant,
                )
                rows = client.query(spec={"relation": "car"}, tenant=tenant)
                if not rows:
                    failures.append(f"{tenant}: empty answer")
            # ...and a revision wave: every 8th tenant moves one shape
            # over, migrating onto views the fleet already maintains.
            for user in range(0, N_USERS, 8):
                tenant = f"user-{user}"
                shape = (user + 1) % N_SHAPES
                client.profile_set(
                    "deal", rng.choice(shape_variants(shape)),
                    tenant=tenant,
                )
                client.query(spec={"relation": "car"}, tenant=tenant)

            # -- shared-view collapse + hit rate -------------------------
            tenancy = client.metrics()["tenancy"]
            entries = tenancy["shared_views"]["entries"]
            if entries != N_SHAPES:
                failures.append(
                    f"expected {N_SHAPES} canonical views, index holds "
                    f"{entries}"
                )
            hit_rate = tenancy["tenants"]["view_hit_rate"]
            if hit_rate < 0.85:
                failures.append(
                    f"tenant view-hit rate {hit_rate} < 0.85"
                )

            # -- isolation: a revising neighbour never moves my answer ---
            victim, noisy = "user-3", "user-11"  # same shape pool
            before = canon(client.query(
                spec={"relation": "car"}, tenant=victim
            ))
            client.profile_set(
                "deal", {"type": "lowest", "attribute": "mileage"},
                tenant=noisy,
            )
            client.profile_delete(tenant=noisy)
            after = canon(client.query(
                spec={"relation": "car"}, tenant=victim
            ))
            if before != after:
                failures.append(
                    f"{victim}'s answer changed when {noisy} revised: "
                    f"{len(before)} rows -> {len(after)} rows"
                )

        # Migration deltas reach only the revising tenant's stream.
        with PreferenceClient(port=port, timeout=60) as alice, \
                PreferenceClient(port=port, timeout=60) as bob:
            alice.login("user-20")
            bob.login("user-28")  # same canonical shape as user-20
            alice.subscribe("car")
            bob.subscribe("car")
            alice.profile_set(
                "deal", {"type": "highest", "attribute": "price"}
            )
            delta = alice.wait_delta(timeout=15)
            if not (delta.get("enter") or delta.get("exit")):
                failures.append(f"revising tenant saw no migration: {delta}")
            leaked = bob.deltas(timeout=0.5)
            if leaked:
                failures.append(
                    f"migration delta leaked to another tenant: {leaked}"
                )

        # -- record, SIGKILL, restart, verify recovery -------------------
        with PreferenceClient(port=port, timeout=60) as client:
            for user in range(0, N_USERS, 13):
                tenant = f"user-{user}"
                version = client.profile_get(tenant=tenant)["version"]
                rows = canon(client.query(
                    spec={"relation": "car"}, tenant=tenant
                ))
                pre_kill[tenant] = (version, rows)

        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)
        print(f"killed server pid={server.pid}; restarting from {data_dir}")
        server = start_server(data_dir, port)
        wait_ready(port, server)

        with PreferenceClient(port=port, timeout=60) as client:
            profiles = client.metrics()["tenancy"]["profiles"]
            if profiles != N_USERS - 1:  # one tenant deleted its profile
                failures.append(
                    f"recovered {profiles} profiles, "
                    f"expected {N_USERS - 1}"
                )
            for tenant, (version, rows) in pre_kill.items():
                got_version = client.profile_get(tenant=tenant)["version"]
                if got_version != version:
                    failures.append(
                        f"{tenant}: recovered profile version "
                        f"{got_version} != pre-kill {version}"
                    )
                got_rows = canon(client.query(
                    spec={"relation": "car"}, tenant=tenant
                ))
                if got_rows != rows:
                    failures.append(
                        f"{tenant}: post-restart answer diverged "
                        f"({len(got_rows)} vs {len(rows)} rows)"
                    )
    finally:
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=15)
            except subprocess.TimeoutExpired:
                server.kill()
        shutil.rmtree(data_dir, ignore_errors=True)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"tenancy smoke passed: {N_USERS} tenants, {N_SHAPES} shared "
          f"views, hit rate {hit_rate}, isolation + SIGKILL recovery ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
