#!/usr/bin/env python
"""Chaos smoke: a seeded fault-plan sweep over every injected failure class.

Five deterministic scenarios, one per failure surface the robustness
layer protects:

1. **storage outage** — injected engine failures trip the circuit
   breaker; query answers stay byte-identical to a healthy oracle, and
   the reseal replays every missed mutation into the mirror;
2. **WAL torn write** — a crash mid-append leaves a truncated frame; a
   restart heals the tail and serves exactly the acknowledged prefix;
3. **refresh poison** — an injected view-refresh failure quarantines
   one view; subscribers get a structured error delta, queries fall
   back to exact planning with identical answers, and re-subscribing
   heals the stream;
4. **slow subscriber** — a subscriber that stops reading is
   disconnected at the write-buffer cap (counted as shed) without
   stalling the mutator;
5. **SIGKILL during checkpoint** — the server dies mid-checkpoint (a
   fault-plan delay holds it inside the critical section); the restart
   recovers the exact pre-kill state and live deltas resume.

Every scenario asserts *parity against the batch winnow* and
*structured shedding* — never a hang, never a silently wrong answer.

Run from the repo root (CI's ``chaos-smoke`` job)::

    PYTHONPATH=src python tools/chaos_smoke.py
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.faults.plan import FaultPlan, FaultRule, InjectedFault  # noqa: E402
from repro.psql.ast import Comparison  # noqa: E402
from repro.server import (  # noqa: E402
    ClientError,
    PreferenceClient,
    PreferenceService,
    run_in_thread,
)
from repro.session import Session  # noqa: E402
from repro.storage.sqlite import SQLiteBackend  # noqa: E402

SQL = "SELECT * FROM car PREFERRING LOWEST(price)"

CARS = [
    {"make": "opel", "price": 20_000.0, "power": 50},
    {"make": "bmw", "price": 30_000.0, "power": 52},
    {"make": "vw", "price": 10_000.0, "power": 48},
]


def canon(rows):
    return sorted(tuple(sorted(r.items())) for r in rows)


def scenario_storage_outage() -> str:
    """Breaker trips, answers stay exact, reseal replays the mirror."""
    sqlite = Session({"car": [dict(r) for r in CARS]},
                     storage=SQLiteBackend())
    oracle = Session({"car": [dict(r) for r in CARS]}, storage="memory")
    try:
        guard = sqlite.storage.backend
        guard.breaker.reset_timeout = 0.0  # probe immediately
        extra = [{"make": "opel", "price": 5_000.0 + i, "power": 99}
                 for i in range(guard.breaker.threshold)]
        with FaultPlan([FaultRule("storage.insert",
                                  times=len(extra))], seed=11):
            for row in extra:
                sqlite.insert_rows("car", [dict(row)])
        for row in extra:
            oracle.insert_rows("car", [dict(row)])
        assert guard.breaker.state != "closed", guard.breaker.state
        assert canon(sqlite.sql(SQL).rows()) == canon(oracle.sql(SQL).rows())
        # Reseal: the next clean mutation probes and replays the mirror.
        sqlite.insert_rows("car", [{"make": "vw", "price": 50_000.0,
                                    "power": 60}])
        oracle.insert_rows("car", [{"make": "vw", "price": 50_000.0,
                                    "power": 60}])
        stats = guard.stats()
        assert stats["breaker"]["state"] == "closed", stats
        assert stats["breaker"]["counts"]["resealed"] == 1, stats
        assert stats["dirty"] == [], stats
        mirrored = guard.prefilter(
            "car", [Comparison("power", ">=", 0)],
            sqlite.catalog.version("car"))
        assert mirrored == sqlite.catalog.get("car").rows()
        assert canon(sqlite.sql(SQL).rows()) == canon(oracle.sql(SQL).rows())
        return (f"breaker opened after {len(extra)} failures, resealed, "
                f"{len(mirrored)} rows replayed into the mirror")
    finally:
        sqlite.close()
        oracle.close()


def scenario_wal_torn_write() -> str:
    """A torn append never surfaces as data: restart serves the prefix."""
    data_dir = tempfile.mkdtemp(prefix="chaos_wal_")
    try:
        session = Session({"car": [dict(r) for r in CARS]},
                          data_dir=data_dir)
        session.insert_rows("car", [{"make": "vw", "price": 1_000.0,
                                     "power": 10}])
        acknowledged = session.catalog.get("car").rows()
        torn = False
        with FaultPlan([FaultRule("wal.append", action="torn",
                                  fraction=0.3)], seed=11):
            try:
                session.insert_rows("car", [{"make": "audi",
                                             "price": 2_000.0,
                                             "power": 20}])
            except InjectedFault:
                torn = True
        assert torn, "torn-write fault did not fire"
        session.storage.wal.close()
        session.storage.backend.close()

        reborn = Session(data_dir=data_dir)
        try:
            recovery = reborn.storage.recovery
            assert recovery["healed_torn_tail"] is True, recovery
            assert reborn.catalog.get("car").rows() == acknowledged
            return (f"torn tail healed, {len(acknowledged)} acknowledged "
                    f"rows recovered exactly")
        finally:
            reborn.close()
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def scenario_refresh_poison() -> str:
    """One poisoned view: error delta, exact fallback, heal on re-sub."""
    service = PreferenceService({"car": [dict(r) for r in CARS]})
    handle = run_in_thread(service)
    try:
        prefer = {"type": "lowest", "attribute": "price"}
        with PreferenceClient(port=handle.port) as client:
            sub = client.subscribe("car", prefer=prefer, snapshot=True)
            with FaultPlan([FaultRule("view.refresh", times=1)], seed=11):
                client.insert("car", [{"make": "a", "price": 1.0,
                                       "power": 1}])
            delta = client.wait_delta(timeout=15)
            assert "error" in delta, f"no error delta: {delta}"
            # Parity: the poisoned view never answers; planning does.
            info = client.query_info(spec={"relation": "car",
                                           "prefer": prefer})
            assert info["source"] == "plan", info["source"]
            batch = service.session.sql(SQL).rows()
            assert canon(info["rows"]) == canon(batch)
            health = client.health()
            assert health["status"] == "degraded", health
            # Re-subscribing heals the view and the stream resumes.
            client.unsubscribe(sub["subscription"])
            sub = client.subscribe("car", prefer=prefer, snapshot=True)
            assert canon(sub["rows"]) == canon(batch)
            client.insert("car", [{"make": "b", "price": 0.5, "power": 1}])
            delta = client.wait_delta(timeout=15)
            assert delta.get("enter"), f"stream did not resume: {delta}"
            assert client.health()["status"] == "ok"
            healed = service.metrics.snapshot()
            assert healed["views_poisoned"] == 1, healed
            assert healed["views_healed"] == 1, healed
        return "poisoned view reported, answers stayed exact, heal verified"
    finally:
        handle.stop()
        service.close()


def scenario_slow_subscriber() -> str:
    """A non-draining subscriber is shed; the mutator never stalls."""
    service = PreferenceService({"item": [{"price": 100.0, "pad": ""}]})
    handle = run_in_thread(service, write_buffer_cap=64 * 1024)
    try:
        with PreferenceClient(port=handle.port) as subscriber, \
                PreferenceClient(port=handle.port) as mutator:
            subscriber.subscribe(
                "item", prefer={"type": "lowest", "attribute": "price"}
            )
            blob = "z" * (512 * 1024)
            start = time.monotonic()
            shed = {}
            for i in range(40):
                mutator.insert("item", [{"price": 99.0 - i, "pad": blob}])
                shed = mutator.metrics()["shed"]
                if shed.get("slow_subscriber"):
                    break
            elapsed = time.monotonic() - start
            assert shed.get("slow_subscriber", 0) >= 1, shed
            assert mutator.ping()["pong"] is True
        return (f"subscriber shed after {i + 1} pushes in {elapsed:.2f}s; "
                f"mutator unaffected")
    finally:
        handle.stop()
        service.close()


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _start_server(data_dir: str, port: int,
                  fault_plan: dict | None = None) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO / 'src'}{os.pathsep}" + env.get(
        "PYTHONPATH", ""
    )
    env.pop("REPRO_FAULT_PLAN", None)
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = json.dumps(fault_plan)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.server",
         "--port", str(port), "--cars", "200",
         "--storage", "sqlite", "--data-dir", data_dir],
        cwd=REPO, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def _wait_ready(port: int, process: subprocess.Popen,
                timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            output = process.stdout.read() if process.stdout else ""
            raise SystemExit(f"server died during startup:\n{output}")
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=1):
                return
        except OSError:
            time.sleep(0.1)
    raise SystemExit(f"server on port {port} not ready after {timeout}s")


def scenario_sigkill_during_checkpoint() -> str:
    """SIGKILL inside the checkpoint critical section: exact recovery."""
    data_dir = tempfile.mkdtemp(prefix="chaos_ckpt_")
    plan = {"seed": 11, "rules": [{"site": "storage.checkpoint",
                                   "action": "delay", "delay_ms": 8000}]}
    port = _free_port()
    server = _start_server(data_dir, port, fault_plan=plan)
    try:
        _wait_ready(port, server)
        with PreferenceClient(port=port) as client:
            template = dict(client.query(
                spec={"relation": "car", "select": None})[0])
            client.insert("car", [dict(template, oid=7_000_001,
                                       price=12345)])
            pre_relations = {r["name"]: (r["rows"], r["version"])
                             for r in client.relations()}
            pre_best = client.query(sql=SQL)
            # Fire the checkpoint without waiting: the fault plan holds
            # the server inside it for 8s; we kill it there.
            client._sock.sendall(
                b'{"id": 999, "op": "checkpoint"}\n'
            )
            time.sleep(1.0)
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)

        server = _start_server(data_dir, port)
        _wait_ready(port, server)
        with PreferenceClient(port=port) as client:
            health = client.health()
            assert health["status"] == "ok", health
            post_relations = {r["name"]: (r["rows"], r["version"])
                              for r in client.relations()}
            assert post_relations == pre_relations, (
                f"pre:  {pre_relations}\npost: {post_relations}")
            assert canon(client.query(sql=SQL)) == canon(pre_best)
            # Live deltas flow on the recovered catalog.
            client.subscribe("car", prefer={"type": "lowest",
                                            "attribute": "price"})
            client.insert("car", [dict(template, oid=7_000_002,
                                       price=1)])
            delta = client.wait_delta(timeout=15)
            assert delta.get("enter"), f"no post-recovery delta: {delta}"
        return (f"killed mid-checkpoint, "
                f"{pre_relations['car'][0]} rows at exact versions, "
                f"live deltas after recovery")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)
        shutil.rmtree(data_dir, ignore_errors=True)


SCENARIOS = [
    ("storage-outage", scenario_storage_outage),
    ("wal-torn-write", scenario_wal_torn_write),
    ("refresh-poison", scenario_refresh_poison),
    ("slow-subscriber", scenario_slow_subscriber),
    ("sigkill-checkpoint", scenario_sigkill_during_checkpoint),
]


def main(argv: list[str] | None = None) -> int:
    only = set(argv or sys.argv[1:])
    failures = 0
    for name, scenario in SCENARIOS:
        if only and name not in only:
            continue
        started = time.monotonic()
        try:
            detail = scenario()
        except (AssertionError, ClientError, SystemExit) as exc:
            failures += 1
            print(f"FAIL {name}: {exc}", file=sys.stderr)
            continue
        elapsed = time.monotonic() - started
        print(f"PASS {name} ({elapsed:.2f}s): {detail}")
    if failures:
        print(f"chaos smoke: {failures} scenario(s) failed",
              file=sys.stderr)
        return 1
    print("chaos smoke passed: every fault class degraded loudly "
          "and recovered exactly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
