#!/usr/bin/env python
"""prefcheck: repo-specific lint for the preference-query codebase.

Four AST-level checks encode invariants the test suite cannot express as
unit tests (they quantify over *all* code, current and future):

* **PC001 — no planning under a session lock.**  Query planning and plan
  execution are expensive and re-entrant (planning may consult the
  statistics cache); doing either inside ``with self._lock`` /
  ``with self.mutation_lock`` blocks every concurrent reader.  The
  session's contract is "plan outside, publish inside" (see
  ``Session.cached_plan``), and this check keeps it honest.
* **PC002 — plan nodes are frozen.**  The session plan cache shares one
  ``Plan`` across threads; a mutable node would let one query's
  execution corrupt another's plan.  Every dataclass in
  ``query/plan.py`` must be ``@dataclass(frozen=True)``.
* **PC003 — every rewrite rule has a test.**  Each rule name registered
  in ``PLAN_RULES`` (``query/rewrite.py``) must appear somewhere under
  ``tests/``, so no rule ships without at least one test referencing it
  by name.
* **PC004 — no bare ``except:`` in server paths.**  A bare except in
  ``src/repro/server`` swallows ``KeyboardInterrupt`` / ``SystemExit``
  and can wedge the serving loop; catch ``Exception`` (or narrower).

Usage::

    python tools/prefcheck.py [paths...]      # default: src/

Exit status 1 when any finding is reported.  The check functions are
importable (``check_source``, ``check_repo``) so ``tests/tools`` and
``tools/check_docs.py`` reuse them over examples and doc blocks.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

REPO = Path(__file__).resolve().parent.parent

#: Calls that plan, rewrite, or execute — too expensive to hold a lock over.
PLANNING_CALLS = {
    "plan", "_build_plan", "rewrite_plan", "execute", "run",
    "winnow", "columnar_winnow", "k_best", "from_relation", "seed",
}

#: Lock attributes whose ``with`` blocks must stay planning-free.
LOCK_ATTRS = {"_lock", "mutation_lock", "_cache_lock"}

#: Cheap accessors allowed under a lock even though their names collide
#: with planning verbs elsewhere (none currently; extend deliberately).
ALLOWED_UNDER_LOCK: set[str] = set()


@dataclass(frozen=True)
class Finding:
    """One lint finding: stable PC-code, location, message."""

    code: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _call_name(node: ast.Call) -> str | None:
    fn = node.func
    if isinstance(fn, ast.Attribute):
        return fn.attr
    if isinstance(fn, ast.Name):
        return fn.id
    return None


def _is_lock_context(item: ast.withitem) -> bool:
    expr = item.context_expr
    # `with self._lock:` / `with session.mutation_lock:` — also matched
    # when wrapped in a call, e.g. `with lock_of(x):` is NOT matched.
    return isinstance(expr, ast.Attribute) and expr.attr in LOCK_ATTRS


def _check_lock_scope(tree: ast.AST, path: str) -> list[Finding]:
    """PC001: no planning/materialization calls inside lock blocks."""
    findings: list[Finding] = []

    class Visitor(ast.NodeVisitor):
        def visit_With(self, node: ast.With) -> None:
            if any(_is_lock_context(item) for item in node.items):
                for inner in ast.walk(node):
                    if not isinstance(inner, ast.Call):
                        continue
                    name = _call_name(inner)
                    if name in PLANNING_CALLS and name not in ALLOWED_UNDER_LOCK:
                        findings.append(Finding(
                            "PC001", path, inner.lineno,
                            f"call to {name}() inside a lock block; plan "
                            "outside the lock, publish the result inside",
                        ))
            self.generic_visit(node)

    Visitor().visit(tree)
    return findings


def _check_frozen_plan_nodes(tree: ast.AST, path: str) -> list[Finding]:
    """PC002: every dataclass in query/plan.py is frozen."""
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for decorator in node.decorator_list:
            frozen = False
            is_dataclass = False
            if isinstance(decorator, ast.Name) and decorator.id == "dataclass":
                is_dataclass = True
            elif (isinstance(decorator, ast.Call)
                    and isinstance(decorator.func, ast.Name)
                    and decorator.func.id == "dataclass"):
                is_dataclass = True
                frozen = any(
                    kw.arg == "frozen"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in decorator.keywords
                )
            if is_dataclass and not frozen:
                findings.append(Finding(
                    "PC002", path, node.lineno,
                    f"plan-node dataclass {node.name} must be "
                    "@dataclass(frozen=True): plans are shared across "
                    "threads by the session plan cache",
                ))
    return findings


def _check_bare_except(tree: ast.AST, path: str) -> list[Finding]:
    """PC004: no bare ``except:`` clauses (server paths)."""
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(Finding(
                "PC004", path, node.lineno,
                "bare except: swallows KeyboardInterrupt/SystemExit; "
                "catch Exception (or narrower)",
            ))
    return findings


def check_source(source: str, path: str = "<string>") -> list[Finding]:
    """All generic per-file checks over one source text.

    ``query/plan.py`` additionally gets the frozen-dataclass check and
    ``src/repro/server`` files the bare-except check; callers passing
    arbitrary snippets (doc blocks, examples) get the lock-scope check,
    which is sound anywhere.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding("PC000", path, exc.lineno or 0,
                        f"syntax error: {exc.msg}")]
    findings = _check_lock_scope(tree, path)
    normalized = path.replace("\\", "/")
    if normalized.endswith("query/plan.py"):
        findings += _check_frozen_plan_nodes(tree, path)
    if "/server/" in normalized or "repro/server" in normalized:
        findings += _check_bare_except(tree, path)
    return findings


def check_rule_coverage(
    repo: Path = REPO, tests_dir: Path | None = None
) -> list[Finding]:
    """PC003: every PLAN_RULES rule name appears in some test file."""
    rewrite_path = repo / "src" / "repro" / "query" / "rewrite.py"
    if not rewrite_path.exists():
        return []
    tree = ast.parse(rewrite_path.read_text(), filename=str(rewrite_path))
    names: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        if node.value is None or not any(
            isinstance(t, ast.Name) and t.id == "PLAN_RULES" for t in targets
        ):
            continue
        for entry in ast.walk(node.value):
            if (isinstance(entry, ast.Constant)
                    and isinstance(entry.value, str)
                    and entry.value.isidentifier()):
                names.setdefault(entry.value, entry.lineno)
    tests = tests_dir if tests_dir is not None else repo / "tests"
    corpus = "\n".join(
        p.read_text() for p in sorted(tests.rglob("*.py"))
    ) if tests.exists() else ""
    return [
        Finding(
            "PC003", str(rewrite_path.relative_to(repo)), line,
            f"rewrite rule {name!r} has no test referencing it by name; "
            "add one under tests/",
        )
        for name, line in sorted(names.items())
        if name not in corpus
    ]


def iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def check_repo(paths: Iterable[Path], repo: Path = REPO) -> list[Finding]:
    """Per-file checks over ``paths`` plus the repo-wide rule-coverage check."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            rel = str(path.relative_to(repo))
        except ValueError:
            rel = str(path)
        findings += check_source(path.read_text(), rel)
    findings += check_rule_coverage(repo)
    return findings


def main(argv: list[str]) -> int:
    targets = [Path(a) for a in argv] or [REPO / "src"]
    findings = check_repo(targets)
    for finding in findings:
        print(finding)
    if findings:
        print(f"prefcheck: {len(findings)} finding(s)")
        return 1
    print("prefcheck: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
