#!/usr/bin/env python
"""Crash-restart smoke: SIGKILL the durable server, verify exact recovery.

Boots ``python -m repro.server`` on the SQLite backend with a durable
data directory, drives it over the wire (view materialization via
subscribe, inserts, deletes, a mid-stream checkpoint, more mutations so
recovery must combine snapshot *and* WAL), records the observable state,
then SIGKILLs the process — no shutdown hooks, no flush — and restarts
it from the same directory.  The restarted server must reproduce:

* every relation at its exact pre-kill catalog version and row count,
* the continuous view's contents, row for row,
* subscriber reconciliation: a fresh subscription's snapshot equals the
  pre-kill view, and new mutations still push deltas.

Run from the repo root (CI's ``server-smoke`` job)::

    PYTHONPATH=src python tools/crash_restart_smoke.py
"""

from __future__ import annotations

import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

PREFER = {"type": "around", "attribute": "price", "z": 30000}


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(data_dir: str, port: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO / 'src'}{os.pathsep}" + env.get(
        "PYTHONPATH", ""
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.server",
         "--port", str(port), "--cars", "500",
         "--storage", "sqlite", "--data-dir", data_dir],
        cwd=REPO, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def wait_ready(port: int, process: subprocess.Popen,
               timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            output = process.stdout.read() if process.stdout else ""
            raise SystemExit(f"server died during startup:\n{output}")
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=1):
                return
        except OSError:
            time.sleep(0.1)
    raise SystemExit(f"server on port {port} not ready after {timeout}s")


def canon(rows: list[dict]) -> list[tuple]:
    return sorted(tuple(sorted(r.items())) for r in rows)


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.server.client import PreferenceClient

    data_dir = tempfile.mkdtemp(prefix="crash_restart_")
    port = free_port()
    server = start_server(data_dir, port)
    try:
        wait_ready(port, server)
        with PreferenceClient(port=port) as client:
            template = dict(client.query(
                spec={"relation": "car", "select": None}
            )[0])
            # Materialize a view through the wire and mutate around it.
            sub = client.subscribe("car", prefer=PREFER, snapshot=True)
            client.insert("car", [
                dict(template, oid=9_000_001, price=30000),
                dict(template, oid=9_000_002, price=29500),
            ])
            assert client.wait_delta(timeout=15).get("enter"), \
                "pre-kill subscriber saw no delta"
            # Checkpoint mid-stream: recovery must stitch snapshot + WAL.
            checkpoint = client.checkpoint()
            client.insert("car", [dict(template, oid=9_000_003, price=30250)])
            client.delete("car", rows=[
                dict(template, oid=9_000_001, price=30000)
            ])
            client.wait_delta(timeout=15)
            pre_relations = {
                r["name"]: (r["rows"], r["version"])
                for r in client.relations()
            }
            pre_view = client.query(
                spec={"relation": "car", "prefer": PREFER}
            )
            pre_metrics = client.metrics()
            assert pre_metrics["checkpoints"] == 1, pre_metrics["checkpoints"]
            health = client.health()
            assert health["status"] == "ok", f"pre-kill health: {health}"
            client.unsubscribe(sub["subscription"])

        # The crash: no shutdown handler runs, nothing gets flushed.
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)
        print(f"killed server pid={server.pid}; "
              f"checkpoint covered seq {checkpoint['seq']}")

        server = start_server(data_dir, port)
        wait_ready(port, server)
        with PreferenceClient(port=port) as client:
            health = client.health()
            assert health["status"] == "ok", f"post-restart health: {health}"
            assert health["storage"]["breaker"] == "closed", health
            post_relations = {
                r["name"]: (r["rows"], r["version"])
                for r in client.relations()
            }
            assert post_relations == pre_relations, (
                f"catalog mismatch after restart:\n"
                f"  pre:  {pre_relations}\n  post: {post_relations}"
            )
            metrics = client.metrics()
            recovery = (metrics.get("recovery")
                        or metrics["storage"]["recovery"])
            assert recovery and recovery["wal_replayed"] >= 2, recovery
            assert recovery["views_rematerialized"] == 1, recovery

            # View contents, row for row.
            post_view = client.query(
                spec={"relation": "car", "prefer": PREFER}
            )
            assert canon(post_view) == canon(pre_view), (
                f"view mismatch: {len(post_view)} rows post "
                f"vs {len(pre_view)} pre"
            )
            info = client.query_info(
                spec={"relation": "car", "prefer": PREFER}
            )
            assert info["source"] == "view", info

            # Subscriber reconciliation: snapshot matches, deltas flow.
            sub = client.subscribe("car", prefer=PREFER, snapshot=True)
            assert canon(sub["rows"]) == canon(pre_view), \
                "post-restart subscription snapshot diverges"
            # Exactly 30000: distance 0 always lands in the BMO window.
            client.insert("car", [dict(template, oid=9_000_004, price=30000)])
            delta = client.wait_delta(timeout=15)
            assert delta.get("enter"), f"post-restart delta missing: {delta}"
            client.unsubscribe(sub["subscription"])
        print(f"crash-restart smoke passed: {len(pre_relations)} relation(s) "
              f"at exact versions, view of {len(pre_view)} rows intact, "
              f"recovery={recovery}")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)
        shutil.rmtree(data_dir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
