#!/usr/bin/env python3
"""Benchmark regression report: medians + speedup ratios -> BENCH_<pr>.json.

Runs the repository's pinned benchmark workloads directly (no pytest
harness, so timings are not diluted by fixture plumbing), writes a
machine-readable report, and **fails** (exit 1) when a speedup criterion
regresses:

* ``columnar_vs_bnl`` — the PR-2 acceptance criterion: the columnar
  winnow must beat row-level BNL by >= 5x on 50k-row skylines (NumPy
  required; the check is skipped, and recorded as skipped, without it).
* ``rewrite_pushdown`` — the PR-3 acceptance criterion: the rewritten
  (selection-pushed) plan must beat the unrewritten plan by >= 2x on the
  filtered 50k-row workload.
* ``view_serving`` — the PR-4 acceptance criterion: repeat queries
  answered from a materialized continuous winnow view must beat
  re-planned execution by >= 5x on the 50k-row catalog (and return
  identical rows).
* ``parallel_speedup`` — the PR-5 acceptance criterion: partitioned
  winnow execution (:mod:`repro.engine.parallel`) must beat the
  single-thread columnar kernel by >= 2x on the 4x-sized (200k-row)
  skyline workload.  Needs NumPy and >= 4 visible cores; below that the
  check is skipped and recorded as skipped with the honest core count —
  parity with serial execution is still asserted.
* ``semantic_elim`` — the PR-6 acceptance criterion: on a 50k-row
  workload whose statistics derive a key on the chain head, the
  semantic ``winnow_to_sort`` rewrite (single-column argmax instead of
  a dominance winnow) must beat the unoptimized plan by >= 10x, with
  identical rows.
* ``revision_speedup`` — the PR-7 acceptance criterion: revising a
  standing winnow answer by a proved order refinement (prioritized
  append, Definition 9) must beat a full re-plan + re-scan by >= 10x on
  the 50k-row catalog, with identical rows; the incomparable fallback
  is additionally asserted *exact* (full recompute) inline.
* ``durable_pushdown`` — the PR-8 acceptance criterion: a winnow whose
  rigid WHERE filter is pushed through the SQLite storage backend
  (``push_select_into_storage``: the kernel scans only the backend's
  pre-filtered candidate set) must beat the unrewritten full-scan plan
  by >= 2x on the filtered 50k-row workload, with identical rows.
* ``snapshot_restore`` — PR-8's durability latency budget: recovering a
  50k-row catalog from its snapshot (fresh ``Session(data_dir=...)``,
  rows + versions + constraints decoded and re-mirrored) must finish
  within :data:`RESTORE_BUDGET_NS`.  Encoded as ratio = budget/elapsed
  so the shared >= 1.0 pass rule applies.
* ``tenant_view_sharing`` — the PR-9 acceptance criterion: simulated
  tenants whose profile terms are syntactic variants (commuted Pareto
  arms, laundered duplicates) of a small pool of canonical shapes must
  achieve a >= 90% shared-view hit rate through the canonicalized
  shared-view index, with the registry LRU-bounded.  Encoded as
  ratio = hit_rate/0.9 so the shared >= 1.0 pass rule applies.

Usage::

    python tools/bench_report.py                                # CI
    python tools/bench_report.py --quick                        # smoke run

The report path defaults to ``$BENCH_REPORT`` (falling back to
``BENCH_8.json``) so the CI workflow names the artifact once, at the
workflow level, instead of per job.

The CI benchmark job uploads the JSON as a build artifact, so regressions
come with numbers attached.  Report schema::

    {
      "schema": "repro-bench-report/v1",
      "environment": {"python": "...", "numpy": "...", "rows": 50000},
      "benchmarks": {"<name>": {"median_ns": ..., "rounds": ...}},
      "ratios": {"<name>": ...},
      "criteria": {"<name>": {"ratio": ..., "threshold": ..., "pass": ...}}
    }
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.base_numerical import HighestPreference, LowestPreference  # noqa: E402
from repro.core.constructors import pareto  # noqa: E402
from repro.engine.backend import numpy_available  # noqa: E402
from repro.engine.columnar import columnar_winnow  # noqa: E402
from repro.engine.parallel import cpu_count  # noqa: E402
from repro.query.algorithms import block_nested_loop  # noqa: E402

#: parallel_speedup needs this many visible cores to be meaningful.
PARALLEL_MIN_CORES = 4

#: snapshot_restore latency budget: a 50k-row catalog must recover from
#: its snapshot (decode + re-mirror) in at most this long.  Generous
#: enough for CI-shared cores, tight enough that an accidentally
#: quadratic recovery path trips it.
RESTORE_BUDGET_NS = 10_000_000_000


def median_ns(fn, rounds: int) -> int:
    samples = []
    for _ in range(rounds):
        start = time.perf_counter_ns()
        fn()
        samples.append(time.perf_counter_ns() - start)
    return int(statistics.median(samples))


def _skyline_pref(dims: int):
    return pareto(*(
        HighestPreference(f"d{i}") if i % 2 == 0 else LowestPreference(f"d{i}")
        for i in range(dims)
    ))


def bench_columnar_vs_bnl(report: dict, n_rows: int, rounds: int) -> None:
    from repro.datasets.skyline_data import skyline_relation

    pref = _skyline_pref(3)
    ratios = []
    for kind in ("independent", "correlated"):
        relation = skyline_relation(kind, n_rows, 3, seed=13)
        relation.columns()  # materialize outside the timed region
        rows = relation.rows()

        bnl = median_ns(lambda: block_nested_loop(pref, rows), rounds)
        columnar = median_ns(lambda: columnar_winnow(pref, relation), rounds)
        report["benchmarks"][f"skyline_{kind}_{n_rows}_bnl"] = {
            "median_ns": bnl, "rounds": rounds,
        }
        report["benchmarks"][f"skyline_{kind}_{n_rows}_columnar"] = {
            "median_ns": columnar, "rounds": rounds,
        }
        ratios.append(bnl / columnar)
        report["ratios"][f"columnar_vs_bnl_{kind}"] = round(bnl / columnar, 2)
    report["criteria"]["columnar_vs_bnl"] = {
        "ratio": round(min(ratios), 2),
        "threshold": 5.0,
        "pass": min(ratios) >= 5.0,
    }


def bench_parallel_speedup(report: dict, n_rows: int, rounds: int) -> None:
    """Partitioned vs. single-thread columnar winnow on the 4x workload.

    Parity is asserted on every machine; the >= 2x timing criterion only
    runs (and only counts) with >= PARALLEL_MIN_CORES cores — recorded as
    skipped, with the core count, otherwise.
    """
    from repro.datasets.skyline_data import skyline_relation

    cores = cpu_count()
    rows = n_rows * 4
    pref = _skyline_pref(3)
    relation = skyline_relation("independent", rows, 3, seed=29)
    relation.columns()  # materialize outside the timed region

    serial_result = columnar_winnow(pref, relation)
    parallel_result = columnar_winnow(pref, relation, partitions=cores)
    assert parallel_result.rows() == serial_result.rows()

    if cores < PARALLEL_MIN_CORES:
        report["criteria"]["parallel_speedup"] = {
            "ratio": None, "threshold": 2.0, "pass": None,
            "skipped": f"{cores} visible core(s); need "
                       f">= {PARALLEL_MIN_CORES} (parity asserted)",
            "cores": cores,
        }
        return

    serial = median_ns(lambda: columnar_winnow(pref, relation), rounds)
    parallel = median_ns(
        lambda: columnar_winnow(pref, relation, partitions=cores), rounds
    )
    report["benchmarks"][f"parallel_{rows}_serial_columnar"] = {
        "median_ns": serial, "rounds": rounds,
    }
    report["benchmarks"][f"parallel_{rows}_partitioned_{cores}"] = {
        "median_ns": parallel, "rounds": rounds,
    }
    ratio = serial / parallel
    report["ratios"]["parallel_speedup"] = round(ratio, 2)
    report["criteria"]["parallel_speedup"] = {
        "ratio": round(ratio, 2),
        "threshold": 2.0,
        "pass": ratio >= 2.0,
        "cores": cores,
    }


def bench_rewrite_pushdown(report: dict, n_rows: int, rounds: int) -> None:
    import random

    from repro.core.base_numerical import AroundPreference
    from repro.session import Session

    rng = random.Random(7)
    rows = [
        {"price": rng.uniform(0, 100_000), "power": rng.uniform(50, 400)}
        for _ in range(n_rows)
    ]
    session = Session({"car": rows})
    query = (
        session.query("car")
        .prefer(pareto(
            AroundPreference("price", 40_000), HighestPreference("power")
        ))
        .but_only(("distance", "price", "<=", 2_000))
    )
    rewritten = query.plan()
    canonical = query.optimize(False).plan()
    assert "push_select_below_winnow" in query.explain()

    canonical_ns = median_ns(canonical.execute, rounds)
    rewritten_ns = median_ns(rewritten.execute, rounds)
    report["benchmarks"][f"pushdown_{n_rows}_canonical"] = {
        "median_ns": canonical_ns, "rounds": rounds,
    }
    report["benchmarks"][f"pushdown_{n_rows}_rewritten"] = {
        "median_ns": rewritten_ns, "rounds": rounds,
    }
    ratio = canonical_ns / rewritten_ns
    report["ratios"]["rewrite_pushdown"] = round(ratio, 2)
    report["criteria"]["rewrite_pushdown"] = {
        "ratio": round(ratio, 2),
        "threshold": 2.0,
        "pass": ratio >= 2.0,
    }


def bench_view_serving(report: dict, n_rows: int, rounds: int) -> None:
    from repro.core.base_numerical import AroundPreference
    from repro.datasets.cars import generate_cars
    from repro.query import optimizer
    from repro.server import PreferenceService

    pref = pareto(
        AroundPreference("price", 30_000), HighestPreference("horsepower")
    )
    spec = {
        "relation": "car",
        "prefer": {
            "type": "pareto",
            "children": [
                {"type": "around", "attribute": "price", "z": 30_000},
                {"type": "highest", "attribute": "horsepower"},
            ],
        },
    }
    service = PreferenceService({"car": generate_cars(n_rows, seed=11).rows()})
    try:
        relation = service.session.catalog.get("car")
        service.query(spec=spec)
        answer = service.query(spec=spec)  # second sighting materializes
        assert answer.source == "view"
        fresh = optimizer.plan(pref, relation).execute()

        def canon(rows):
            return sorted(tuple(sorted(r.items())) for r in rows)

        assert canon(answer.rows) == canon(fresh.rows())

        planned = median_ns(
            lambda: optimizer.plan(pref, relation).execute(), rounds
        )
        viewed = median_ns(lambda: service.query(spec=spec), rounds)
    finally:
        service.close()
    report["benchmarks"][f"serving_{n_rows}_replanned"] = {
        "median_ns": planned, "rounds": rounds,
    }
    report["benchmarks"][f"serving_{n_rows}_view"] = {
        "median_ns": viewed, "rounds": rounds,
    }
    ratio = planned / viewed
    report["ratios"]["view_serving"] = round(ratio, 2)
    report["criteria"]["view_serving"] = {
        "ratio": round(ratio, 2),
        "threshold": 5.0,
        "pass": ratio >= 5.0,
    }


def bench_semantic_elim(report: dict, n_rows: int, rounds: int) -> None:
    """Constraint-eliminated winnow vs. the full dominance winnow.

    ``rating`` is continuous, so statistics derive ``key(rating)``; the
    ``winnow_to_sort`` rule then proves the prioritized chain head alone
    selects a single best tuple and replaces the whole winnow with a
    one-pass column argmax.  ``optimize(False)`` is the honest baseline:
    the canonical plan never consults the constraint registry.
    """
    import random

    from repro.core.base_numerical import AroundPreference
    from repro.core.constructors import prioritized
    from repro.session import Session

    rng = random.Random(23)
    rows = [
        {
            "rating": i + rng.random() * 0.5,  # guaranteed pairwise distinct
            "price": rng.uniform(0, 100_000),
            "power": rng.uniform(50, 400),
        }
        for i in range(n_rows)
    ]
    session = Session({"listing": rows})
    pref = prioritized(
        HighestPreference("rating"),
        pareto(AroundPreference("price", 40_000), HighestPreference("power")),
    )
    query = session.query("listing").prefer(pref)
    optimized = query.plan()
    canonical = query.optimize(False).plan()
    assert "winnow_to_sort" in query.explain()
    assert optimized.execute().rows() == canonical.execute().rows()

    canonical_ns = median_ns(canonical.execute, rounds)
    optimized_ns = median_ns(optimized.execute, rounds)
    report["benchmarks"][f"semantic_{n_rows}_canonical"] = {
        "median_ns": canonical_ns, "rounds": rounds,
    }
    report["benchmarks"][f"semantic_{n_rows}_eliminated"] = {
        "median_ns": optimized_ns, "rounds": rounds,
    }
    ratio = canonical_ns / optimized_ns
    report["ratios"]["semantic_elim"] = round(ratio, 2)
    report["criteria"]["semantic_elim"] = {
        "ratio": round(ratio, 2),
        "threshold": 10.0,
        "pass": ratio >= 10.0,
    }


def bench_revision(report: dict, n_rows: int, rounds: int) -> None:
    """Revise-from-view (Definition 9 refinement) vs full re-planning."""
    from repro.core.base_numerical import HighestPreference, LowestPreference
    from repro.core.constructors import prioritized
    from repro.datasets.cars import generate_cars
    from repro.query import optimizer
    from repro.query.revision import ReviseState

    relation = generate_cars(n_rows, seed=11)
    rows = relation.rows()
    base = LowestPreference("price")
    refined = prioritized(base, HighestPreference("horsepower"))

    def canon(out):
        return sorted(tuple(sorted(r.items())) for r in out)

    fresh = optimizer.plan(refined, relation).execute()
    probe = ReviseState(base, rows)
    outcome = probe.revise(refined)
    assert outcome.strategy == "view"
    assert canon(probe.result()) == canon(fresh.rows())
    # The incomparable fallback stays exact: full recompute, counted.
    swap = ReviseState(base, rows, frontier_limit=n_rows)
    assert swap.revise(HighestPreference("mileage")).strategy == "full"
    assert canon(swap.result()) == canon(
        optimizer.plan(HighestPreference("mileage"), relation).execute().rows()
    )

    states = iter([ReviseState(base, rows) for _ in range(rounds)])
    revised = median_ns(lambda: next(states).revise(refined), rounds)
    replanned = median_ns(
        lambda: optimizer.plan(refined, relation).execute(), rounds
    )
    report["benchmarks"][f"revision_{n_rows}_replanned"] = {
        "median_ns": replanned, "rounds": rounds,
    }
    report["benchmarks"][f"revision_{n_rows}_revised"] = {
        "median_ns": revised, "rounds": rounds,
    }
    ratio = replanned / revised
    report["ratios"]["revision_speedup"] = round(ratio, 2)
    report["criteria"]["revision_speedup"] = {
        "ratio": round(ratio, 2),
        "threshold": 10.0,
        "pass": ratio >= 10.0,
    }


def bench_durable_pushdown(report: dict, n_rows: int, rounds: int) -> None:
    """SQL-prefiltered winnow vs. the unrewritten full-scan plan.

    The catalog lives on the SQLite backend; ``push_select_into_storage``
    hands the rigid ``category =`` filter to the mirror's indexed column,
    so the winnow kernel scans only the ~0.5% candidate set the backend
    returns.  The baseline (``optimize(False)``) scans and filters all
    rows in Python.  The preference is a plain skyline (columnar
    dominance form) so the winnow itself stays cheap on both sides and
    the criterion measures the scans, not the kernel.
    """
    import random

    from repro.core.base_numerical import LowestPreference
    from repro.psql.ast import Comparison
    from repro.session import Session

    rng = random.Random(31)
    rows = [
        {
            "category": f"c{rng.randrange(200):03d}",  # ~0.5% per category
            "price": rng.uniform(0, 100_000),
            "power": rng.uniform(50, 400),
        }
        for _ in range(n_rows)
    ]
    session = Session({"car": rows}, storage="sqlite")
    try:
        query = (
            session.query("car")
            .where(Comparison("category", "=", "c007"))
            .prefer(pareto(
                LowestPreference("price"), HighestPreference("power")
            ))
        )
        pushed = query.plan()
        fullscan = query.optimize(False).plan()
        assert "push_select_into_storage" in query.explain()
        assert pushed.execute().rows() == fullscan.execute().rows()

        fullscan_ns = median_ns(fullscan.execute, rounds)
        pushed_ns = median_ns(pushed.execute, rounds)
    finally:
        session.close()
    report["benchmarks"][f"durable_{n_rows}_fullscan"] = {
        "median_ns": fullscan_ns, "rounds": rounds,
    }
    report["benchmarks"][f"durable_{n_rows}_sql_prefiltered"] = {
        "median_ns": pushed_ns, "rounds": rounds,
    }
    ratio = fullscan_ns / pushed_ns
    report["ratios"]["durable_pushdown"] = round(ratio, 2)
    report["criteria"]["durable_pushdown"] = {
        "ratio": round(ratio, 2),
        "threshold": 2.0,
        "pass": ratio >= 2.0,
    }


def bench_snapshot_restore(report: dict, n_rows: int, rounds: int) -> None:
    """Catalog recovery latency: snapshot -> live session, under budget.

    One durable session checkpoints the car catalog; each timed round
    then boots a *fresh* session over the same directory, which decodes
    the snapshot, restores versions, and re-mirrors the relation into
    SQLite.  The criterion is a latency budget, encoded as
    ratio = budget/elapsed so the shared >= 1.0 pass rule applies.
    """
    import shutil
    import tempfile

    from repro.datasets.cars import generate_cars
    from repro.session import Session

    data_dir = tempfile.mkdtemp(prefix="bench_restore_")
    try:
        writer = Session(storage="sqlite", data_dir=data_dir)
        writer.register("car", generate_cars(n_rows, seed=11).rows())
        writer.checkpoint()
        writer.close()

        samples = []
        for _ in range(rounds):
            start = time.perf_counter_ns()
            restored = Session(storage="sqlite", data_dir=data_dir)
            samples.append(time.perf_counter_ns() - start)
            assert len(restored.catalog.get("car")) == n_rows
            restored.close()
        elapsed = int(statistics.median(samples))
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)
    report["benchmarks"][f"restore_{n_rows}_snapshot"] = {
        "median_ns": elapsed, "rounds": rounds,
    }
    ratio = RESTORE_BUDGET_NS / elapsed
    report["ratios"]["snapshot_restore"] = round(ratio, 2)
    report["criteria"]["snapshot_restore"] = {
        "ratio": round(ratio, 2),
        "threshold": 1.0,
        "pass": elapsed <= RESTORE_BUDGET_NS,
        "budget_ms": RESTORE_BUDGET_NS // 1_000_000,
        "elapsed_ms": elapsed // 1_000_000,
    }


def bench_tenant_view_sharing(report: dict, n_rows: int, rounds: int) -> None:
    """Canonicalized shared views under a simulated tenant population.

    ``n_rows // 5`` tenants (10k at the CI cardinality) each store one of
    three syntactic spellings of one of 48 canonical preference shapes
    and run one profiled query.  Equivalent spellings collapse onto one
    continuous view, so all but the first query per shape are view hits.
    The criterion is the hit rate itself (ratio = hit_rate / 0.90); the
    LRU bound and variant-collapse are asserted inline.
    """
    import random

    from repro.datasets.cars import generate_cars
    from repro.server import PreferenceService

    n_users = max(n_rows // 5, 100)
    n_shapes = 48
    capacity = 64
    rng = random.Random(17)
    service = PreferenceService(
        {"car": generate_cars(min(n_rows, 5_000), seed=11).rows()},
        shared_view_capacity=capacity,
    )
    try:
        tenancy = service.tenancy
        start = time.perf_counter_ns()
        for user in range(n_users):
            z = 10_000 + 1_000 * (user % n_shapes)
            around = {"type": "around", "attribute": "price", "z": z}
            hi_hp = {"type": "highest", "attribute": "horsepower"}
            arms = [[around, hi_hp], [hi_hp, around],
                    [around, hi_hp, around]]  # commuted / laundered
            tenancy.set_profile(
                f"user-{user}", "deal",
                {"type": "pareto", "children": rng.choice(arms)},
            )
            answer = tenancy.query(f"user-{user}", spec={"relation": "car"})
            assert answer.rows
        elapsed = time.perf_counter_ns() - start
        snapshot = tenancy.metrics.snapshot()
        assert snapshot["total_queries"] == n_users
        assert len(tenancy.shared) == n_shapes <= capacity
        hit_rate = snapshot["view_hit_rate"]
    finally:
        service.close()
    report["benchmarks"][f"tenancy_{n_users}_users"] = {
        "median_ns": elapsed, "rounds": 1,
        "per_query_ns": elapsed // n_users,
    }
    ratio = hit_rate / 0.90
    report["ratios"]["tenant_view_sharing"] = round(ratio, 2)
    report["criteria"]["tenant_view_sharing"] = {
        "ratio": round(ratio, 2),
        "threshold": 1.0,
        "pass": ratio >= 1.0,
        "hit_rate": hit_rate,
        "users": n_users,
        "shapes": n_shapes,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output",
                        default=os.environ.get("BENCH_REPORT",
                                               "BENCH_9.json"),
                        help="report path (default: $BENCH_REPORT "
                             "or BENCH_9.json)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per benchmark (median is kept)")
    parser.add_argument("--rows", type=int, default=50_000,
                        help="workload cardinality (default: %(default)s)")
    parser.add_argument("--quick", action="store_true",
                        help="5k-row smoke run; criteria are still checked")
    args = parser.parse_args(argv)
    n_rows = 5_000 if args.quick else args.rows

    numpy_version = None
    if numpy_available():
        import numpy

        numpy_version = numpy.__version__
    report: dict = {
        "schema": "repro-bench-report/v1",
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy_version,
            "rows": n_rows,
            "cores": cpu_count(),
        },
        "benchmarks": {},
        "ratios": {},
        "criteria": {},
    }

    if numpy_available():
        bench_columnar_vs_bnl(report, n_rows, args.rounds)
        bench_parallel_speedup(report, n_rows, args.rounds)
    else:
        report["criteria"]["columnar_vs_bnl"] = {
            "ratio": None, "threshold": 5.0, "pass": None,
            "skipped": "NumPy unavailable",
        }
        report["criteria"]["parallel_speedup"] = {
            "ratio": None, "threshold": 2.0, "pass": None,
            "skipped": "NumPy unavailable",
        }
    bench_rewrite_pushdown(report, n_rows, args.rounds)
    bench_view_serving(report, n_rows, args.rounds)
    bench_semantic_elim(report, n_rows, args.rounds)
    bench_revision(report, n_rows, args.rounds)
    bench_durable_pushdown(report, n_rows, args.rounds)
    bench_snapshot_restore(report, n_rows, args.rounds)
    bench_tenant_view_sharing(report, n_rows, args.rounds)

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    failed = [
        name for name, crit in report["criteria"].items()
        if crit["pass"] is False
    ]
    for name, crit in sorted(report["criteria"].items()):
        status = {True: "pass", False: "FAIL", None: "skip"}[crit["pass"]]
        print(f"{name}: ratio={crit['ratio']} "
              f"(threshold {crit['threshold']}x) -> {status}")
    print(f"report written to {args.output}")
    if failed:
        print(f"criteria regressed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
