"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build an editable
wheel.  ``python setup.py develop`` takes the legacy path that needs only
setuptools.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
